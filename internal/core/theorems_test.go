package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

// fixture builds a world, a workload, a fed store and an oracle once per
// test binary; the theorem tests are read-only over it.
type fixture struct {
	w  *roadnet.World
	wl *mobility.Workload
	st *core.Store
	or *mobility.Oracle
}

func newFixture(t *testing.T, seed int64, cityOpts roadnet.GridOpts, mobOpts mobility.Opts) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w, err := roadnet.GridCity(cityOpts, rng)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := mobility.Generate(w, mobOpts, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	if err := wl.Feed(st); err != nil {
		t.Fatal(err)
	}
	return &fixture{w: w, wl: wl, st: st, or: mobility.NewOracle(wl)}
}

func smallFixture(t *testing.T, seed int64) *fixture {
	return newFixture(t, seed,
		roadnet.GridOpts{NX: 10, NY: 10, Spacing: 50, Jitter: 0.25, RemoveFrac: 0.2, CurveFrac: 0.1},
		mobility.Opts{Objects: 80, Horizon: 20000, TripsPerObject: 4,
			MeanSpeed: 10, MeanPause: 300, LeaveProb: 0.5, HotspotBias: 0.4})
}

func randomRegion(t *testing.T, w *roadnet.World, rng *rand.Rand) *core.Region {
	t.Helper()
	b := w.Bounds()
	wFrac := 0.15 + rng.Float64()*0.5
	hFrac := 0.15 + rng.Float64()*0.5
	x := b.Min.X + rng.Float64()*b.Width()*(1-wFrac)
	y := b.Min.Y + rng.Float64()*b.Height()*(1-hFrac)
	rect := geom.RectWH(x, y, b.Width()*wFrac, b.Height()*hFrac)
	r, err := core.NewRegion(w, w.JunctionsIn(rect))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTheorem41SnapshotMatchesOracle is the central correctness property:
// on the unsampled graph, the boundary integral of the tracking forms
// equals the true occupancy for every region and time (Theorem 4.1/4.2).
func TestTheorem41SnapshotMatchesOracle(t *testing.T) {
	fx := smallFixture(t, 101)
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		r := randomRegion(t, fx.w, rng)
		ts := rng.Float64() * fx.wl.Horizon
		got := core.SnapshotCount(fx.st, r, ts)
		want := float64(fx.or.InsideAt(r.Contains, ts))
		if got != want {
			t.Fatalf("trial %d: snapshot(%v) = %v, oracle = %v (region %d junctions)",
				trial, ts, got, want, r.Size())
		}
	}
}

// TestTheorem43TransientMatchesOracle checks the net-flow count.
func TestTheorem43TransientMatchesOracle(t *testing.T) {
	fx := smallFixture(t, 103)
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 60; trial++ {
		r := randomRegion(t, fx.w, rng)
		t1 := rng.Float64() * fx.wl.Horizon
		t2 := t1 + rng.Float64()*(fx.wl.Horizon-t1)
		got := core.TransientCount(fx.st, r, t1, t2)
		want := float64(fx.or.TransientCount(r.Contains, t1, t2))
		if got != want {
			t.Fatalf("trial %d: transient = %v, oracle = %v", trial, got, want)
		}
	}
}

// TestTheorem42StaticBounds checks the static count: the min-scan value is
// always ≥ the true always-present count and ≤ occupancy at both interval
// endpoints.
func TestTheorem42StaticBounds(t *testing.T) {
	fx := smallFixture(t, 105)
	rng := rand.New(rand.NewSource(206))
	exact, approx := 0, 0
	for trial := 0; trial < 60; trial++ {
		r := randomRegion(t, fx.w, rng)
		t1 := rng.Float64() * fx.wl.Horizon * 0.8
		t2 := t1 + rng.Float64()*(fx.wl.Horizon-t1)
		got := core.StaticCount(fx.st, fx.st, r, t1, t2)
		truth := float64(fx.or.StaticCount(r.Contains, t1, t2))
		at1 := float64(fx.or.InsideAt(r.Contains, t1))
		at2 := float64(fx.or.InsideAt(r.Contains, t2))
		if got < truth {
			t.Fatalf("static %v below true always-present count %v", got, truth)
		}
		if got > at1 || got > at2 {
			t.Fatalf("static %v exceeds endpoint occupancy (%v, %v)", got, at1, at2)
		}
		if got == truth {
			exact++
		} else {
			approx++
		}
	}
	if exact == 0 {
		t.Error("static count never matched the oracle exactly; min-scan looks broken")
	}
}

// TestStaticCountSampledConsistency: the sampled approximation can only
// overestimate the event-scan value (it probes fewer instants).
func TestStaticCountSampledConsistency(t *testing.T) {
	fx := smallFixture(t, 107)
	rng := rand.New(rand.NewSource(208))
	for trial := 0; trial < 30; trial++ {
		r := randomRegion(t, fx.w, rng)
		t1 := rng.Float64() * fx.wl.Horizon * 0.5
		t2 := t1 + rng.Float64()*(fx.wl.Horizon-t1)
		exact := core.StaticCount(fx.st, fx.st, r, t1, t2)
		sampled := core.StaticCountSampled(fx.st, r, t1, t2, 20)
		if sampled < exact {
			t.Fatalf("sampled static %v < exact min-scan %v", sampled, exact)
		}
	}
}

// TestDoubleCountingAvoided reproduces the paper's §3.1.2 scenario: an
// object that repeatedly exits and re-enters a region is counted once by
// the forms, while a naive crossing counter counts it every time.
func TestDoubleCountingAvoided(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 6, NY: 6, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	// Region: left half of the city.
	b := w.Bounds()
	rect := geom.RectWH(b.Min.X, b.Min.Y, b.Width()/2+1, b.Height())
	r, err := core.NewRegion(w, w.JunctionsIn(rect))
	if err != nil {
		t.Fatal(err)
	}
	// Find a cut road to bounce across.
	cuts := r.CutRoads()
	if len(cuts) == 0 {
		t.Fatal("no cut roads")
	}
	cr := cuts[0]
	inside := cr.Inside
	outside := w.Star.Edge(cr.Road).Other(inside)
	gw := w.Gateways[0]
	ts := 0.0
	mustNoErr(t, st.RecordEnter(gw, ts))
	// Walk from the gateway to the outside endpoint (events on the way).
	nodes, edges, ok := planar.DijkstraTo(w.Star, gw, outside)
	if !ok {
		t.Fatal("no path from gateway")
	}
	for i, e := range edges {
		ts += 1
		mustNoErr(t, st.RecordMove(e, nodes[i], ts))
	}
	// Bounce in and out 5 times.
	naiveEntries := 0.0
	for k := 0; k < 5; k++ {
		ts += 1
		mustNoErr(t, st.RecordMove(cr.Road, outside, ts))
		naiveEntries++
		ts += 1
		mustNoErr(t, st.RecordMove(cr.Road, inside, ts))
	}
	ts += 1
	mustNoErr(t, st.RecordMove(cr.Road, outside, ts))
	naiveEntries++
	// The object is now inside; the form count must be exactly 1.
	if got := core.SnapshotCount(st, r, ts+1); got != 1 {
		t.Errorf("snapshot = %v, want 1 (double counting?)", got)
	}
	// A naive entry counter would report 6.
	if naiveEntries != 6 {
		t.Fatalf("scenario setup wrong: %v entries", naiveEntries)
	}
	inCross := st.RoadCrossings(cr.Road, inside, ts+1)
	if inCross != naiveEntries {
		t.Fatalf("raw in-crossings = %v, want %v", inCross, naiveEntries)
	}
}

// TestRegionCutRoads verifies the perimeter structure on a known grid.
func TestRegionCutRoads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 5, NY: 5, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Single interior junction (2,2): its cut roads = its incident roads.
	target := planar.NodeID(2*5 + 2)
	r, err := core.NewRegion(w, []planar.NodeID{target})
	if err != nil {
		t.Fatal(err)
	}
	cuts := r.CutRoads()
	if len(cuts) != w.Star.Degree(target) {
		t.Errorf("cut roads = %d, want degree %d", len(cuts), w.Star.Degree(target))
	}
	for _, c := range cuts {
		if c.Inside != target {
			t.Error("wrong inside endpoint")
		}
	}
	// The whole world has no cut roads.
	all, err := core.NewRegion(w, w.JunctionsIn(w.Bounds()))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(all.CutRoads()); n != 0 {
		t.Errorf("whole-world cut roads = %d, want 0", n)
	}
}

func TestRegionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 3, NY: 3, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewRegion(w, []planar.NodeID{99}); err == nil {
		t.Error("out-of-range junction accepted")
	}
	r, err := core.NewRegion(w, []planar.NodeID{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("dedup failed: size = %d", r.Size())
	}
	if r.Contains(planar.NodeID(-1)) {
		t.Error("negative id contained")
	}
	empty, err := core.NewRegion(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Empty() {
		t.Error("empty region not empty")
	}
}

func TestStoreValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 3, NY: 3, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	if err := st.RecordMove(planar.EdgeID(999), 0, 1); err == nil {
		t.Error("bad road accepted")
	}
	if err := st.RecordMove(planar.EdgeID(0), 99, 1); err == nil {
		t.Error("non-endpoint accepted")
	}
	mustNoErr(t, st.RecordMove(0, w.Star.Edge(0).U, 5))
	if err := st.RecordMove(0, w.Star.Edge(0).U, 3); err == nil {
		t.Error("time regression accepted")
	}
	if st.NumEvents() != 1 {
		t.Errorf("events = %d", st.NumEvents())
	}
	if st.Clock() != 5 {
		t.Errorf("clock = %v", st.Clock())
	}
}

func TestSnapshotMonotoneAdditivity(t *testing.T) {
	// Counting is additive over disjoint regions: inside(A) + inside(B)
	// = inside(A ∪ B) when A and B are disjoint junction sets.
	fx := smallFixture(t, 109)
	rng := rand.New(rand.NewSource(210))
	b := fx.w.Bounds()
	left := geom.RectWH(b.Min.X, b.Min.Y, b.Width()/2, b.Height())
	right := geom.RectWH(b.Min.X+b.Width()/2+1e-9, b.Min.Y, b.Width()/2, b.Height())
	ra, err := core.NewRegion(fx.w, fx.w.JunctionsIn(left))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.NewRegion(fx.w, fx.w.JunctionsIn(right))
	if err != nil {
		t.Fatal(err)
	}
	both, err := core.NewRegion(fx.w, append(append([]planar.NodeID{},
		ra.Junctions()...), rb.Junctions()...))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		ts := rng.Float64() * fx.wl.Horizon
		sum := core.SnapshotCount(fx.st, ra, ts) + core.SnapshotCount(fx.st, rb, ts)
		union := core.SnapshotCount(fx.st, both, ts)
		if sum != union {
			t.Fatalf("additivity broken: %v + split ≠ %v", sum, union)
		}
	}
}

// TestSnapshotQuick is a quick-check style property over random seeds:
// snapshot equals oracle on freshly generated small worlds.
func TestSnapshotQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := &quick.Config{MaxCount: 8}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, err := roadnet.GridCity(
			roadnet.GridOpts{NX: 6, NY: 6, Spacing: 20, Jitter: 0.2, RemoveFrac: 0.15}, rng)
		if err != nil {
			return false
		}
		wl, err := mobility.Generate(w, mobility.Opts{
			Objects: 25, Horizon: 5000, TripsPerObject: 3,
			MeanSpeed: 8, MeanPause: 120, LeaveProb: 0.5}, rng)
		if err != nil {
			return false
		}
		st := core.NewStore(w)
		if err := wl.Feed(st); err != nil {
			return false
		}
		or := mobility.NewOracle(wl)
		for trial := 0; trial < 15; trial++ {
			b := w.Bounds()
			rect := geom.RectWH(
				b.Min.X+rng.Float64()*b.Width()/2,
				b.Min.Y+rng.Float64()*b.Height()/2,
				b.Width()/3, b.Height()/3)
			r, err := core.NewRegion(w, w.JunctionsIn(rect))
			if err != nil {
				return false
			}
			ts := rng.Float64() * wl.Horizon
			if core.SnapshotCount(st, r, ts) != float64(or.InsideAt(r.Contains, ts)) {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestPerimeterSensors(t *testing.T) {
	fx := smallFixture(t, 111)
	rng := rand.New(rand.NewSource(212))
	r := randomRegion(t, fx.w, rng)
	sensors := r.PerimeterSensors()
	if r.Size() > 0 && r.Size() < fx.w.NumJunctions() && len(sensors) == 0 {
		t.Error("proper region has no perimeter sensors")
	}
	for _, s := range sensors {
		if s == fx.w.Dual.OuterNode {
			t.Error("outer node reported as perimeter sensor")
		}
	}
}

func TestStorageStats(t *testing.T) {
	fx := smallFixture(t, 113)
	st := fx.st.Storage()
	if st.TotalTimestamps == 0 {
		t.Fatal("no timestamps recorded")
	}
	if st.Bytes != st.TotalTimestamps*8 {
		t.Error("bytes accounting wrong")
	}
	sum := 0
	for _, n := range st.TimestampsPerRoad {
		sum += n
	}
	if sum != st.TotalTimestamps {
		t.Error("per-road sum mismatch")
	}
}

func mustNoErr(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
