package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/planar"
)

// This file implements the concurrent substrate of the sharded Store:
// lock-striped writers and epoch-published immutable read snapshots.
//
// Writers are partitioned into numShards stripes keyed by edge ID (and
// by junction ID for world edges), so concurrent ingestion streams on
// disjoint stripes never contend on one lock. Readers take no locks at
// all: every road's tracking form and every stripe's world-edge event
// maps are published behind atomic pointers as immutable snapshots, and
// a query integrates its perimeter against whatever snapshots are
// current when it reads them. DESIGN.md §10 states the full contract.

// numShards is the write-lock stripe count. 32 stripes keep the whole
// touched-shard set of a batch representable as one uint32 bitmask and
// are plenty to make writer-writer contention negligible at the
// goroutine counts a single process serves.
const (
	shardBits = 5
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

// Observability metrics: write-lock striping effectiveness. Contended
// acquisitions are the ones where TryLock failed and the writer had to
// block; the contention rate is contended/acquisitions.
var (
	mShardLocks     = obs.Default.Counter("core.shard_lock_acquisitions")
	mShardContended = obs.Default.Counter("core.shard_lock_contended")
)

// Ordering selects how strictly the store validates event-time order.
type Ordering uint8

const (
	// OrderGlobal (the default) requires every ingested event to be at
	// or after the store clock — one globally non-decreasing event
	// stream, the semantics of the original single-lock store. Suited to
	// a single ingestion goroutine.
	OrderGlobal Ordering = iota
	// OrderPerEdge requires time order only per tracking-form direction
	// (and per world-edge direction): each sensing edge's γ⁺/γ⁻
	// sequences stay monotone, but independent edges may ingest at
	// independent clocks. This is the in-network reality — every sensor
	// orders only its own crossings — and it is what lets concurrent
	// writers ingest disjoint road stripes without coordination.
	OrderPerEdge
)

// shard is one write stripe: a mutex serializing writers that touch the
// stripe, plus the stripe's published world-edge snapshot. Road
// trackers are published per road (Store.roads), not per stripe, so a
// reader of one cut road sees both directions of its form in a single
// consistent snapshot.
type shard struct {
	mu    sync.Mutex
	world atomic.Pointer[worldView]
}

// lock acquires the stripe mutex, counting contended acquisitions.
func (sh *shard) lock() {
	if !sh.mu.TryLock() {
		mShardContended.Inc()
		sh.mu.Lock()
	}
	mShardLocks.Inc()
}

// worldView is the immutable world-edge snapshot of one stripe: entry
// and exit timestamps per gateway junction owned by the stripe. Maps
// are never mutated after publication — writers clone, append into the
// clone, and republish.
type worldView struct {
	in, out map[planar.NodeID][]float64
}

// shardOfRoad and shardOfNode stripe by the low ID bits so adjacent
// roads (which tend to be ingested by nearby sensors) spread across
// stripes.
func shardOfRoad(road planar.EdgeID) int { return int(road) & shardMask }
func shardOfNode(node planar.NodeID) int { return int(node) & shardMask }

// wjMemo is the memoized sorted world-junction set, valid while the
// gateway generation it was built at is still current.
type wjMemo struct {
	gen uint64
	js  []planar.NodeID
}

// loadTracker returns the published tracking form of one road; nil
// means no events yet.
func (s *Store) loadTracker(road planar.EdgeID) *Tracker {
	return s.roads[road].Load()
}

// worldViewOf returns the published world-edge snapshot owning node g.
func (s *Store) worldViewOf(g planar.NodeID) *worldView {
	return s.shards[shardOfNode(g)].world.Load()
}

// cloneWorldMap shallow-copies a world-event map. The slice values are
// shared with the previous view: they are append-only, and the old
// view's lengths were captured at its publication, so in-place growth
// beyond them never races a reader.
func cloneWorldMap(m map[planar.NodeID][]float64) map[planar.NodeID][]float64 {
	nm := make(map[planar.NodeID][]float64, len(m)+1)
	for k, v := range m {
		nm[k] = v
	}
	return nm
}

// growFor returns ts with room for `add` more elements, growing at most
// once: to the exact need when the tracker is fresh, doubling otherwise
// so repeated small batches stay amortized-linear.
func growFor(ts []float64, add int) []float64 {
	need := len(ts) + add
	if need <= cap(ts) {
		return ts
	}
	newCap := 2 * cap(ts)
	if newCap < need {
		newCap = need
	}
	nt := make([]float64, len(ts), newCap)
	copy(nt, ts)
	return nt
}

// advanceClock lifts the store clock to at least t (CAS max).
func (s *Store) advanceClock(t float64) {
	for {
		old := s.clockBits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if s.clockBits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// commit publishes the bookkeeping of n successfully applied events
// ending at time t.
func (s *Store) commit(t float64, n int) {
	s.advanceClock(t)
	s.events.Add(int64(n))
}

// rebuildWorldJunctions recomputes the sorted world-junction set from
// the published stripe snapshots.
func (s *Store) rebuildWorldJunctions() []planar.NodeID {
	var out []planar.NodeID
	for i := range s.shards {
		wv := s.shards[i].world.Load()
		for g := range wv.in {
			out = append(out, g)
		}
		for g := range wv.out {
			if _, ok := wv.in[g]; !ok {
				out = append(out, g)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
