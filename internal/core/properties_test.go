package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/planar"
)

// TestTrackerSemantics exercises the raw tracking form: counts are
// prefix sums of the recorded events per direction.
func TestTrackerSemantics(t *testing.T) {
	var tr core.Tracker
	times := []float64{1, 2, 2, 5, 9}
	for i, ts := range times {
		tr.Record(i%2 == 0, ts)
	}
	if tr.Len() != len(times) {
		t.Fatalf("Len = %d", tr.Len())
	}
	// forward got indices 0,2,4 → times 1,2,9; reverse 2,5.
	if got := tr.Count(true, 2); got != 2 {
		t.Errorf("fwd count ≤2 = %d, want 2", got)
	}
	if got := tr.Count(true, 0.5); got != 0 {
		t.Errorf("fwd count ≤0.5 = %d", got)
	}
	if got := tr.Count(false, 5); got != 2 {
		t.Errorf("rev count ≤5 = %d, want 2", got)
	}
	if got := len(tr.Events(true)); got != 3 {
		t.Errorf("fwd events = %d", got)
	}
}

// TestTrackerCountMonotone is a quick property: Count is monotone in t
// for random event sequences.
func TestTrackerCountMonotone(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr core.Tracker
		ts := 0.0
		for i := 0; i < 100; i++ {
			ts += rng.Float64() * 5
			tr.Record(rng.Intn(2) == 0, ts)
		}
		prevF, prevR := -1, -1
		for q := 0.0; q < ts+10; q += 3 {
			f, r := tr.Count(true, q), tr.Count(false, q)
			if f < prevF || r < prevR {
				return false
			}
			prevF, prevR = f, r
		}
		return tr.Count(true, ts+1)+tr.Count(false, ts+1) == tr.Len()
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

// TestComplementInvariant: a region and its complement partition the
// world, so their occupancy counts sum to the world occupancy at every
// time.
func TestComplementInvariant(t *testing.T) {
	fx := smallFixture(t, 301)
	rng := rand.New(rand.NewSource(302))
	all := make([]planar.NodeID, fx.w.Star.NumNodes())
	for i := range all {
		all[i] = planar.NodeID(i)
	}
	world, err := core.NewRegion(fx.w, all)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		r := randomRegion(t, fx.w, rng)
		var comp []planar.NodeID
		for _, j := range all {
			if !r.Contains(j) {
				comp = append(comp, j)
			}
		}
		rc, err := core.NewRegion(fx.w, comp)
		if err != nil {
			t.Fatal(err)
		}
		ts := rng.Float64() * fx.wl.Horizon
		a := core.SnapshotCount(fx.st, r, ts)
		b := core.SnapshotCount(fx.st, rc, ts)
		w := core.SnapshotCount(fx.st, world, ts)
		if a+b != w {
			t.Fatalf("complement broken: %v + %v != %v", a, b, w)
		}
	}
}

// TestTransientTelescoping: net flows over adjacent windows sum to the
// net flow of the union window.
func TestTransientTelescoping(t *testing.T) {
	fx := smallFixture(t, 303)
	rng := rand.New(rand.NewSource(304))
	for trial := 0; trial < 20; trial++ {
		r := randomRegion(t, fx.w, rng)
		t0 := rng.Float64() * fx.wl.Horizon / 3
		t1 := t0 + rng.Float64()*fx.wl.Horizon/3
		t2 := t1 + rng.Float64()*fx.wl.Horizon/3
		a := core.TransientCount(fx.st, r, t0, t1)
		b := core.TransientCount(fx.st, r, t1, t2)
		ab := core.TransientCount(fx.st, r, t0, t2)
		if a+b != ab {
			t.Fatalf("telescoping broken: %v + %v != %v", a, b, ab)
		}
	}
}

// TestWorldOccupancyBounds: the whole-world count equals enters − leaves
// and never exceeds the object population.
func TestWorldOccupancyBounds(t *testing.T) {
	fx := smallFixture(t, 305)
	all := make([]planar.NodeID, fx.w.Star.NumNodes())
	for i := range all {
		all[i] = planar.NodeID(i)
	}
	world, err := core.NewRegion(fx.w, all)
	if err != nil {
		t.Fatal(err)
	}
	st := fx.wl.Stats()
	got := core.SnapshotCount(fx.st, world, fx.wl.Horizon+1)
	if got != float64(st.Enters-st.Leaves) {
		t.Errorf("final world occupancy %v != enters−leaves %d", got, st.Enters-st.Leaves)
	}
	for ts := 0.0; ts < fx.wl.Horizon; ts += fx.wl.Horizon / 17 {
		v := core.SnapshotCount(fx.st, world, ts)
		if v < 0 || v > float64(fx.wl.Objects) {
			t.Fatalf("world occupancy %v out of [0, %d] at %v", v, fx.wl.Objects, ts)
		}
	}
}

// TestSnapshotBeforeFirstEventIsZero: no region holds objects before the
// workload starts.
func TestSnapshotBeforeFirstEventIsZero(t *testing.T) {
	fx := smallFixture(t, 307)
	rng := rand.New(rand.NewSource(308))
	first := fx.wl.Events[0].T
	for trial := 0; trial < 10; trial++ {
		r := randomRegion(t, fx.w, rng)
		if got := core.SnapshotCount(fx.st, r, first-1); got != 0 {
			t.Fatalf("pre-workload count = %v", got)
		}
	}
}

// TestCutRoadCacheEquivalence: installing the scan result as a cache
// changes nothing.
func TestCutRoadCacheEquivalence(t *testing.T) {
	fx := smallFixture(t, 309)
	rng := rand.New(rand.NewSource(310))
	for trial := 0; trial < 10; trial++ {
		r := randomRegion(t, fx.w, rng)
		ts := rng.Float64() * fx.wl.Horizon
		want := core.SnapshotCount(fx.st, r, ts)
		r2, err := core.NewRegion(fx.w, r.Junctions())
		if err != nil {
			t.Fatal(err)
		}
		r2.SetCutRoads(r.CutRoads())
		if got := core.SnapshotCount(fx.st, r2, ts); got != want {
			t.Fatalf("cached cut roads changed count: %v vs %v", got, want)
		}
	}
}
