package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/roadnet"
)

// Micro-benchmarks for the fast-path kernels, one per optimization
// level. Each fused variant is paired with the reference it replaced so
// `go test -bench` shows the speedup directly.

type benchEnv struct {
	w       *roadnet.World
	wl      *mobility.Workload
	st      *core.Store
	regions []*core.Region
	rects   []geom.Rect
}

func newBenchEnv(seed int64, nRegions int) *benchEnv {
	rng := rand.New(rand.NewSource(seed))
	w, err := roadnet.GridCity(
		roadnet.GridOpts{NX: 16, NY: 16, Spacing: 50, Jitter: 0.2, RemoveFrac: 0.15}, rng)
	if err != nil {
		panic(err)
	}
	wl, err := mobility.Generate(w, mobility.Opts{
		Objects: 300, Horizon: 30000, TripsPerObject: 5,
		MeanSpeed: 10, MeanPause: 400, LeaveProb: 0.5, HotspotBias: 0.3}, rng)
	if err != nil {
		panic(err)
	}
	st := core.NewStore(w)
	if err := wl.Feed(st); err != nil {
		panic(err)
	}
	env := &benchEnv{w: w, wl: wl, st: st}
	b := w.Bounds()
	for i := 0; i < nRegions; i++ {
		wf := 0.3 + rng.Float64()*0.4
		hf := 0.3 + rng.Float64()*0.4
		rect := geom.RectWH(
			b.Min.X+rng.Float64()*b.Width()*(1-wf),
			b.Min.Y+rng.Float64()*b.Height()*(1-hf),
			b.Width()*wf, b.Height()*hf)
		r, err := core.NewRegion(w, w.JunctionsIn(rect))
		if err != nil {
			panic(err)
		}
		r.CutRoads() // pre-memoize: both variants then measure pure counting
		env.regions = append(env.regions, r)
		env.rects = append(env.rects, rect)
	}
	return env
}

var sinkF float64

// BenchmarkTransientQuery compares the fused single-pass transient
// kernel against the seed's two-snapshot reference on identical
// pre-built regions.
func BenchmarkTransientQuery(b *testing.B) {
	env := newBenchEnv(1, 16)
	t1, t2 := env.wl.Horizon*0.3, env.wl.Horizon*0.7
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.TransientCount(env.st, env.regions[i%len(env.regions)], t1, t2)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.TransientCountReference(env.st, env.regions[i%len(env.regions)], t1, t2)
		}
	})
}

// BenchmarkSnapshotQuery: batched perimeter pass vs per-edge interface
// calls, one instant.
func BenchmarkSnapshotQuery(b *testing.B) {
	env := newBenchEnv(2, 16)
	ts := env.wl.Horizon / 2
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.SnapshotCount(env.st, env.regions[i%len(env.regions)], ts)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.SnapshotCountReference(env.st, env.regions[i%len(env.regions)], ts)
		}
	})
}

// BenchmarkStaticQuery: batched multi-probe minimum (one tracker fetch
// per edge) vs the seed's per-probe perimeter re-walk.
func BenchmarkStaticQuery(b *testing.B) {
	env := newBenchEnv(3, 16)
	t1, t2 := env.wl.Horizon*0.3, env.wl.Horizon*0.7
	const samples = 16
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.StaticCountSampled(env.st, env.regions[i%len(env.regions)], t1, t2, samples)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sinkF = core.StaticCountSampledReference(env.st, env.regions[i%len(env.regions)], t1, t2, samples)
		}
	})
}

var sinkN int

// BenchmarkRegionBuild: kd-tree-backed JunctionsIn + memoized perimeter
// construction, the per-query setup cost.
func BenchmarkRegionBuild(b *testing.B) {
	env := newBenchEnv(4, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rect := env.rects[i%len(env.rects)]
		r, err := core.NewRegion(env.w, env.w.JunctionsIn(rect))
		if err != nil {
			b.Fatal(err)
		}
		sinkN = len(r.CutRoads())
	}
}

// BenchmarkIngest compares batch ingestion (one lock + one validation
// pass per chunk) against the seed's per-event locking path, replaying
// the same workload into a fresh store each iteration.
func BenchmarkIngest(b *testing.B) {
	env := newBenchEnv(5, 1)
	// Pre-convert the workload once; both variants replay the same events.
	events := make([]core.Event, 0, len(env.wl.Events))
	for _, ev := range env.wl.Events {
		switch ev.Kind {
		case mobility.Enter:
			events = append(events, core.EnterEvent(ev.At, ev.T))
		case mobility.Move:
			events = append(events, core.MoveEvent(ev.Road, ev.From, ev.T))
		case mobility.Leave:
			events = append(events, core.LeaveEvent(ev.At, ev.T))
		}
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := core.NewStore(env.w)
			if err := st.RecordBatch(events); err != nil {
				b.Fatal(err)
			}
			sinkN = st.NumEvents()
		}
	})
	b.Run("perEvent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := core.NewStore(env.w)
			for _, ev := range events {
				var err error
				switch ev.Kind {
				case core.EventEnter:
					err = st.RecordEnter(ev.Gateway, ev.T)
				case core.EventMove:
					err = st.RecordMove(ev.Road, ev.From, ev.T)
				case core.EventLeave:
					err = st.RecordLeave(ev.Gateway, ev.T)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			sinkN = st.NumEvents()
		}
	})
}
