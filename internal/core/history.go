package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/planar"
)

// This file implements the tiered event history above the segment
// encoding (segment.go): per-direction lists of immutable sealed
// segments, the seal machinery that freezes cold hot-tier prefixes, and
// the compact wire form checkpoints carry (DESIGN.md §12).

// Observability: seal activity and sealed-tier volume.
var (
	mSeals        = obs.Default.Counter("core.history_seals")
	mSealedEvents = obs.Default.Counter("core.history_sealed_events")
	mSealSkipped  = obs.Default.Counter("core.history_seal_lossy_fallbacks")
)

// history is the immutable sealed prefix of one tracking-form
// direction: segments in time order, each covering a contiguous index
// range [seg.startIdx, seg.startIdx+seg.n). A history value is never
// mutated after publication; sealing replaces it wholesale (extend), so
// histories are shared freely across tracker snapshots, store
// snapshots, and checkpoints.
type history struct {
	segs        []*segment
	n           int
	first, last float64
}

// hlen returns the number of sealed events (nil-safe).
func (h *history) hlen() int {
	if h == nil {
		return 0
	}
	return h.n
}

// hlast returns the last sealed timestamp (nil-safe; ok=false when
// empty).
func (h *history) hlast() (float64, bool) {
	if h == nil || h.n == 0 {
		return 0, false
	}
	return h.last, true
}

// extend returns a new history with g appended. g.startIdx must equal
// the receiver's event count.
func (h *history) extend(g *segment) *history {
	nh := &history{last: g.last}
	if h == nil || h.n == 0 {
		nh.segs = []*segment{g}
		nh.n = g.n
		nh.first = g.first
		return nh
	}
	nh.segs = append(append(make([]*segment, 0, len(h.segs)+1), h.segs...), g)
	nh.n = h.n + g.n
	nh.first = h.first
	return nh
}

// countLE returns the number of sealed events with timestamp ≤ t
// (nil-safe): one binary search over segments, one over the matching
// segment's skip index, one partial block decode.
func (h *history) countLE(t float64) int {
	if h == nil || h.n == 0 || t < h.first {
		return 0
	}
	if t >= h.last {
		return h.n
	}
	k := sort.Search(len(h.segs), func(i int) bool { return h.segs[i].first > t }) - 1
	if k < 0 {
		return 0
	}
	g := h.segs[k]
	return g.startIdx + g.countLE(t)
}

// appendSigned appends the sealed events in (t1, t2] to dst with the
// given delta, presizing dst once from the skip-index bounds and
// decoding only the blocks the interval overlaps.
func (h *history) appendSigned(dst []SignedEvent, delta int, t1, t2 float64) []SignedEvent {
	if h == nil || h.n == 0 {
		return dst
	}
	lo, hi := h.countLE(t1), h.countLE(t2)
	if hi <= lo {
		return dst
	}
	dst = growSigned(dst, hi-lo)
	k := sort.Search(len(h.segs), func(i int) bool { return h.segs[i].startIdx+h.segs[i].n > lo })
	for _, g := range h.segs[k:] {
		if g.startIdx >= hi {
			break
		}
		dst = g.appendRange(lo-g.startIdx, hi-g.startIdx, delta, dst)
	}
	return dst
}

// appendTimes materializes every sealed timestamp onto dst, in order.
func (h *history) appendTimes(dst []float64) []float64 {
	if h == nil {
		return dst
	}
	for _, g := range h.segs {
		dst = g.appendTimes(dst)
	}
	return dst
}

// memBytes is the resident footprint of the sealed tier (nil-safe).
func (h *history) memBytes() int {
	if h == nil {
		return 0
	}
	total := 48 // history struct + segs slice header
	for _, g := range h.segs {
		total += g.memBytes() + 8 // slice entry
	}
	return total
}

// validate fully decodes every segment and checks the invariants the
// read path depends on: index continuity, per-segment structure, and
// global time order. Returns the last sealed timestamp.
func (h *history) validate() (float64, error) {
	if h == nil {
		return math.Inf(-1), nil
	}
	if len(h.segs) == 0 || h.n == 0 {
		return 0, fmt.Errorf("core: sealed history with no segments")
	}
	idx := 0
	prev := math.Inf(-1)
	for i, g := range h.segs {
		if g.startIdx != idx {
			return 0, fmt.Errorf("core: sealed segment %d starts at index %d, want %d", i, g.startIdx, idx)
		}
		last, err := g.validate(prev)
		if err != nil {
			return 0, err
		}
		prev = last
		idx += g.n
	}
	if idx != h.n {
		return 0, fmt.Errorf("core: sealed history claims %d events, segments hold %d", h.n, idx)
	}
	if h.first != h.segs[0].first || h.last != prev {
		return 0, fmt.Errorf("core: sealed history first/last metadata mismatch")
	}
	return prev, nil
}

// SealedHistory is the exported, immutable handle of one direction's
// sealed prefix, as carried by StoreSnapshot and checkpoint images.
// Holders share the underlying segments; nothing is ever copied or
// mutated.
type SealedHistory struct {
	h *history
}

// NumEvents returns the number of sealed events.
func (sh *SealedHistory) NumEvents() int {
	if sh == nil {
		return 0
	}
	return sh.h.hlen()
}

// NumSegments returns the number of immutable segments.
func (sh *SealedHistory) NumSegments() int {
	if sh == nil || sh.h == nil {
		return 0
	}
	return len(sh.h.segs)
}

// Wire format of a sealed history (all integers little-endian):
//
//	u32 n_segments
//	per segment:
//	  u8  kind (0 = tick-quantized blocks, 1 = raw float64)
//	  u64 n_events
//	  f64 first | f64 last
//	  kind 0: f64 tick | u32 n_blocks
//	          | { i64 start_tick | u32 payload_off }…
//	          | u32 data_len | data bytes
//	  kind 1: n_events × f64bits
//
// The block payload begins with one mode byte (bit width, or 0xFF for
// varint deltas); see segment.go. Decode rebuilds the derived fields
// (startIdx) and performs structural bounds validation; RestoreSnapshot
// additionally runs the full semantic validation (validate).

const (
	sealedKindBlocks = 0
	sealedKindRaw    = 1
)

// WireSize returns the exact AppendWire output size in bytes.
func (sh *SealedHistory) WireSize() int {
	size := 4
	if sh == nil || sh.h == nil {
		return size
	}
	for _, g := range sh.h.segs {
		size += 1 + 8 + 16
		if g.raw != nil {
			size += 8 * len(g.raw)
		} else {
			size += 8 + 4 + 12*len(g.blocks) + 4 + len(g.data)
		}
	}
	return size
}

// AppendWire appends the compact wire form of the sealed history.
func (sh *SealedHistory) AppendWire(dst []byte) []byte {
	if sh == nil || sh.h == nil {
		return appendWireU32(dst, 0)
	}
	dst = appendWireU32(dst, uint32(len(sh.h.segs)))
	for _, g := range sh.h.segs {
		if g.raw != nil {
			dst = append(dst, sealedKindRaw)
		} else {
			dst = append(dst, sealedKindBlocks)
		}
		dst = appendWireU64(dst, uint64(g.n))
		dst = appendWireU64(dst, math.Float64bits(g.first))
		dst = appendWireU64(dst, math.Float64bits(g.last))
		if g.raw != nil {
			for _, t := range g.raw {
				dst = appendWireU64(dst, math.Float64bits(t))
			}
			continue
		}
		dst = appendWireU64(dst, math.Float64bits(g.tick))
		dst = appendWireU32(dst, uint32(len(g.blocks)))
		for _, b := range g.blocks {
			dst = appendWireU64(dst, uint64(b.startTick))
			dst = appendWireU32(dst, b.off)
		}
		dst = appendWireU32(dst, uint32(len(g.data)))
		dst = append(dst, g.data...)
	}
	return dst
}

func appendWireU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendWireU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// wireReader is a bounds-checked little-endian cursor; the first
// overrun latches err.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("core: sealed history wire truncated")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *wireReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// DecodeSealedHistory parses one sealed history from the front of data,
// returning the bytes consumed. Structural bounds are validated here
// (segment counts, block offsets, payload sizes); callers installing
// the result into a store must run the semantic validation too
// (RestoreSnapshot does).
func DecodeSealedHistory(data []byte) (*SealedHistory, int, error) {
	r := &wireReader{b: data}
	nsegs := int(r.u32())
	if r.err != nil {
		return nil, 0, r.err
	}
	if nsegs == 0 {
		return nil, r.off, nil
	}
	if nsegs > len(data) {
		return nil, 0, fmt.Errorf("core: sealed history claims %d segments in %d bytes", nsegs, len(data))
	}
	h := &history{}
	for i := 0; i < nsegs; i++ {
		kind := r.u8()
		n := int(r.u64())
		first := math.Float64frombits(r.u64())
		last := math.Float64frombits(r.u64())
		if r.err != nil {
			return nil, 0, r.err
		}
		if n <= 0 {
			return nil, 0, fmt.Errorf("core: sealed segment %d claims %d events", i, n)
		}
		g := &segment{startIdx: h.n, n: n, first: first, last: last}
		switch kind {
		case sealedKindRaw:
			raw := r.take(8 * n)
			if raw == nil {
				return nil, 0, r.err
			}
			g.raw = make([]float64, n)
			for j := range g.raw {
				g.raw[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*j:]))
			}
		case sealedKindBlocks:
			g.tick = math.Float64frombits(r.u64())
			nblocks := int(r.u32())
			if r.err != nil {
				return nil, 0, r.err
			}
			if want := (n + segBlockLen - 1) / segBlockLen; nblocks != want {
				return nil, 0, fmt.Errorf("core: sealed segment %d has %d blocks, want %d", i, nblocks, want)
			}
			g.blocks = make([]segBlock, nblocks)
			for j := range g.blocks {
				g.blocks[j] = segBlock{startTick: int64(r.u64()), off: r.u32()}
			}
			dataLen := int(r.u32())
			payload := r.take(dataLen)
			if r.err != nil {
				return nil, 0, r.err
			}
			prevOff := -1
			for j, b := range g.blocks {
				if int(b.off) >= dataLen || int(b.off) <= prevOff {
					return nil, 0, fmt.Errorf("core: sealed segment %d block %d offset out of order", i, j)
				}
				prevOff = int(b.off)
			}
			g.data = append(make([]byte, 0, dataLen), payload...)
		default:
			return nil, 0, fmt.Errorf("core: sealed segment %d has unknown kind %d", i, kind)
		}
		h.segs = append(h.segs, g)
		if i == 0 {
			h.first = g.first
		}
		h.n += g.n
		h.last = g.last
	}
	return &SealedHistory{h: h}, r.off, nil
}

// HistoryConfig configures the tiered event history of a Store: once a
// tracking-form direction's hot tier exceeds SealThreshold timestamps,
// sealing freezes all but the newest HotKeep into an immutable warm
// segment quantized to Tick (see DESIGN.md §12). The zero value
// disables tiering.
type HistoryConfig struct {
	// Tick is the quantization granule in event-time units. Sealing
	// verifies every timestamp reconstructs exactly from the tick grid
	// and falls back to an uncompressed (but still immutable) segment
	// for sequences that do not, so answers stay bit-identical for any
	// Tick. Must be > 0.
	Tick float64
	// HotKeep is the number of newest timestamps kept in the mutable hot
	// tier per direction after a seal (default 1024).
	HotKeep int
	// SealThreshold triggers sealing when a direction's hot tier exceeds
	// it (default 8192). Must be > HotKeep.
	SealThreshold int
	// AutoSealEvery, when > 0, makes stq.System run the background
	// sealer after every AutoSealEvery ingested events. 0 leaves sealing
	// to explicit SealColdPrefixes / SealHistory calls.
	AutoSealEvery int
}

// withDefaults normalizes and validates the configuration.
func (c HistoryConfig) withDefaults() (HistoryConfig, error) {
	if c.HotKeep == 0 {
		c.HotKeep = 1024
	}
	if c.SealThreshold == 0 {
		c.SealThreshold = 8192
	}
	if !(c.Tick > 0) || math.IsInf(c.Tick, 0) {
		return c, fmt.Errorf("core: history tick must be positive and finite, got %v", c.Tick)
	}
	if c.HotKeep < 0 {
		return c, fmt.Errorf("core: history HotKeep must be ≥ 0, got %d", c.HotKeep)
	}
	if c.SealThreshold <= c.HotKeep {
		return c, fmt.Errorf("core: history SealThreshold (%d) must exceed HotKeep (%d)", c.SealThreshold, c.HotKeep)
	}
	return c, nil
}

// SetHistoryConfig enables (or reconfigures) the tiered history.
// Sealing itself happens on SealColdPrefixes calls — from a maintenance
// goroutine, stq's background sealer, or tests.
func (s *Store) SetHistoryConfig(cfg HistoryConfig) error {
	norm, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	s.histCfg.Store(&norm)
	return nil
}

// GetHistoryConfig returns the active history configuration; ok is
// false when tiering is disabled.
func (s *Store) GetHistoryConfig() (HistoryConfig, bool) {
	if c := s.histCfg.Load(); c != nil {
		return *c, true
	}
	return HistoryConfig{}, false
}

// SealStats summarizes one SealColdPrefixes pass.
type SealStats struct {
	// Roads is the number of roads whose tracker was republished.
	Roads int
	// Segments is the number of new immutable segments created.
	Segments int
	// SealedEvents is the number of timestamps moved from the hot tier
	// into segments.
	SealedEvents int
	// LossyFallbacks counts segments stored raw because their
	// timestamps did not quantize exactly to the configured tick.
	LossyFallbacks int
}

// SealColdPrefixes runs one sealing pass: every tracking-form direction
// whose hot tier exceeds the configured threshold has its cold prefix
// (all but the newest HotKeep timestamps) frozen into an immutable warm
// segment, and the tracker republished with a trimmed hot tail.
//
// Publication uses the same atomic per-road pointer the read path
// snapshots (DESIGN.md §10): a concurrent reader sees either the old
// tracker (cold prefix still hot) or the new one (cold prefix sealed) —
// both answer every count bit-identically, so sealing is invisible to
// queries. Writers on the same stripe are excluded for the duration of
// one road's seal only. A no-op pass (nothing over threshold) costs one
// atomic load per road. Safe for concurrent use with ingestion and
// queries; concurrent SealColdPrefixes calls are safe but wasteful.
func (s *Store) SealColdPrefixes() SealStats {
	var st SealStats
	cfg, ok := s.GetHistoryConfig()
	if !ok {
		return st
	}
	for road := range s.roads {
		tr := s.roads[road].Load()
		if tr == nil || (len(tr.fwd) <= cfg.SealThreshold && len(tr.rev) <= cfg.SealThreshold) {
			continue
		}
		sh := &s.shards[shardOfRoad(planar.EdgeID(road))]
		sh.lock()
		tr = s.roads[road].Load() // re-load under the stripe lock
		next := *tr
		sealed := false
		if len(next.fwd) > cfg.SealThreshold {
			next.fwd, next.fwdHist = sealDirection(next.fwd, next.fwdHist, cfg, &st)
			sealed = true
		}
		if len(next.rev) > cfg.SealThreshold {
			next.rev, next.revHist = sealDirection(next.rev, next.revHist, cfg, &st)
			sealed = true
		}
		if sealed {
			s.roads[road].Store(&next)
			st.Roads++
		}
		sh.mu.Unlock()
	}
	if st.Segments > 0 {
		mSeals.Add(uint64(st.Segments))
		mSealedEvents.Add(uint64(st.SealedEvents))
		mSealSkipped.Add(uint64(st.LossyFallbacks))
	}
	return st
}

// sealDirection freezes one direction's cold prefix, returning the
// trimmed hot tail (a fresh allocation, so the old backing array is
// released) and the extended history.
func sealDirection(hot []float64, h *history, cfg HistoryConfig, st *SealStats) ([]float64, *history) {
	cut := len(hot) - cfg.HotKeep
	g := sealSegment(hot[:cut], cfg.Tick, h.hlen())
	if g.raw != nil {
		st.LossyFallbacks++
	}
	st.Segments++
	st.SealedEvents += g.n
	return copyTimes(hot[cut:]), h.extend(g)
}

// MemoryStats is the resident memory footprint of a Store's event
// storage, by tier. Unlike Storage (the paper's logical 8-bytes-per-
// timestamp accounting), MemoryStats reports actual allocated bytes:
// hot slices at capacity, sealed segments at their compact encoded
// size.
type MemoryStats struct {
	// Events is the total event count across both tiers.
	Events int
	// SealedEvents is the number of events held in immutable segments.
	SealedEvents int
	// Segments is the total immutable segment count.
	Segments int
	// HotBytes is the resident size of the mutable hot tier
	// (8 × capacity of every tracker slice, plus tracker structs).
	HotBytes int
	// SealedBytes is the resident size of the warm tier (encoded block
	// payloads, skip indexes, raw fallbacks, struct overhead).
	SealedBytes int
	// WorldBytes is the resident size of gateway world-edge event lists
	// (never sealed; typically a small fraction of road events).
	WorldBytes int
}

// TotalBytes is the total resident event-storage footprint.
func (m MemoryStats) TotalBytes() int { return m.HotBytes + m.SealedBytes + m.WorldBytes }

// trackerStructBytes approximates one published Tracker allocation:
// the struct (4 slice/pointer fields) plus the atomic pointer cell.
const trackerStructBytes = 64

// Memory reports the resident footprint of the store's event storage by
// tier. Lock-free: it walks the published snapshots like a reader.
func (s *Store) Memory() MemoryStats {
	var m MemoryStats
	for i := range s.roads {
		tr := s.roads[i].Load()
		if tr == nil {
			continue
		}
		m.Events += tr.Len()
		m.HotBytes += trackerStructBytes + 8*(cap(tr.fwd)+cap(tr.rev))
		for _, h := range []*history{tr.fwdHist, tr.revHist} {
			if h == nil {
				continue
			}
			m.SealedEvents += h.n
			m.Segments += len(h.segs)
			m.SealedBytes += h.memBytes()
		}
	}
	for i := range s.shards {
		wv := s.shards[i].world.Load()
		for _, side := range []map[planar.NodeID][]float64{wv.in, wv.out} {
			for _, ts := range side {
				m.WorldBytes += 8 * cap(ts)
				m.Events += len(ts)
			}
		}
	}
	return m
}
