// Package core implements the paper's primary contribution: privacy-aware
// spatiotemporal range counting with discrete differential 1-forms on the
// planar sensing graph.
//
// Movements of objects are never stored as trajectories. Instead, every
// road (mobility-graph edge ★e) carries a tracking form on its dual
// sensing edge e: two monotone sequences of crossing timestamps, one per
// direction (the paper's γ⁺/γ⁻ pair, Eq. 8). Region counts are obtained by
// integrating `in − out` along the region perimeter (Theorems 4.1–4.3),
// which cancels objects that leave and re-enter — the identifier-free
// solution to the double counting problem.
//
// Objects enter and leave the world through gateway junctions; those
// virtual "world edges" realize the paper's ★v_ext infinity node and make
// perimeter integration exact on the unsampled graph (see the property
// tests in theorems_test.go).
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

// Observability counters (internal/obs): memo effectiveness of the two
// query-path caches. The hit rate is 1 − scans/calls (respectively
// 1 − rebuilds/calls); a healthy steady state scans each perimeter once
// and rebuilds the world-junction set only on new gateways.
var (
	mCutCalls = obs.Default.Counter("core.cutroads_calls")
	mCutScans = obs.Default.Counter("core.cutroads_scans")
	mWJCalls  = obs.Default.Counter("core.worldjunctions_calls")
	mWJBuilds = obs.Default.Counter("core.worldjunctions_rebuilds")
)

// Region is a query region expressed as a union of sensing-graph faces,
// i.e. a set of junctions of the mobility graph (vertex–face duality).
//
// A Region is immutable once its perimeter is materialized: CutRoads
// memoizes the scan on first call, and every later use (counting,
// perimeter sensors, cost accounting) reads the cached 1-chain. After
// that first call a Region is safe for concurrent readers.
type Region struct {
	w         *roadnet.World
	inside    []bool
	junctions []planar.NodeID
	// cutCache, when non-nil, is the memoized perimeter: either the
	// result of the first CutRoads scan, or a precomputed perimeter
	// installed by SetCutRoads (sampled-graph region approximation
	// derives it from the monitored edge set in O(|E(G̃)|) instead of
	// scanning the region).
	cutCache []CutRoad
	cutOnce  sync.Once
	// scans counts full perimeter scans actually performed — the
	// instrumentation hook the query tests assert single-scan behaviour
	// with. It is 0 or 1 for any Region.
	scans int
}

// NewRegion builds a Region from a set of junctions of w's mobility
// graph. Duplicate IDs are tolerated; out-of-range IDs are an error.
func NewRegion(w *roadnet.World, junctions []planar.NodeID) (*Region, error) {
	r := &Region{w: w, inside: make([]bool, w.Star.NumNodes())}
	for _, j := range junctions {
		if j < 0 || int(j) >= len(r.inside) {
			return nil, fmt.Errorf("core: junction %d out of range [0,%d)", j, len(r.inside))
		}
		if !r.inside[j] {
			r.inside[j] = true
			r.junctions = append(r.junctions, j)
		}
	}
	return r, nil
}

// World returns the world the region is defined on.
func (r *Region) World() *roadnet.World { return r.w }

// Contains reports whether junction j lies in the region.
func (r *Region) Contains(j planar.NodeID) bool {
	return j >= 0 && int(j) < len(r.inside) && r.inside[j]
}

// Junctions returns the junctions of the region. Callers must not modify
// the returned slice.
func (r *Region) Junctions() []planar.NodeID { return r.junctions }

// Size returns the number of faces (junctions) in the region — the
// paper's ω(σ) cell weight.
func (r *Region) Size() int { return len(r.junctions) }

// Empty reports whether the region contains no faces.
func (r *Region) Empty() bool { return len(r.junctions) == 0 }

// CutRoad is a perimeter element of a Region: a road with exactly one
// endpoint inside. Crossings toward Inside are inflow (γ⁺), away are
// outflow (γ⁻) when integrating the boundary.
type CutRoad struct {
	Road   planar.EdgeID
	Inside planar.NodeID
}

// SetCutRoads installs a precomputed perimeter. The caller asserts that
// cuts is exactly the set CutRoads would compute; the sampled package
// uses this to answer queries by touching only monitored sensing edges,
// which is what an in-network deployment does. SetCutRoads must be
// called before the Region is shared across goroutines.
func (r *Region) SetCutRoads(cuts []CutRoad) { r.cutCache = cuts }

// CutRoads returns the perimeter of the region: every road with exactly
// one endpoint inside, each reported once. This is the 1-chain ∂Q_R the
// differential forms are integrated along.
//
// The scan runs at most once per Region; the result is memoized, so the
// query engine and the counting theorems share a single perimeter
// computation. Callers must not modify the returned slice.
func (r *Region) CutRoads() []CutRoad {
	mCutCalls.Inc()
	r.cutOnce.Do(func() {
		if r.cutCache != nil {
			return // installed by SetCutRoads
		}
		r.scans++
		mCutScans.Inc()
		var out []CutRoad
		for _, j := range r.junctions {
			for _, e := range r.w.Star.Incident(j) {
				if !r.Contains(r.w.Star.Edge(e).Other(j)) {
					out = append(out, CutRoad{Road: e, Inside: j})
				}
			}
		}
		if out == nil {
			out = []CutRoad{} // non-nil marks the memo as computed
		}
		r.cutCache = out
	})
	return r.cutCache
}

// PerimeterScans reports how many full perimeter scans the Region has
// performed — 0 before the first CutRoads call (or when a perimeter was
// installed with SetCutRoads), 1 after. Instrumentation for tests and
// cost accounting.
func (r *Region) PerimeterScans() int { return r.scans }

// worldJunctionsInside filters a counter's world-edge junctions to those
// contained in the region; their world edges (to ★v_ext) are part of the
// perimeter.
func (r *Region) worldJunctionsInside(c Counter) []planar.NodeID {
	var out []planar.NodeID
	for _, g := range c.WorldJunctions() {
		if r.Contains(g) {
			out = append(out, g)
		}
	}
	return out
}

// PerimeterSensors returns the distinct sensing-graph nodes flanking the
// region's cut roads — the sensors a perimeter-routed query must access.
func (r *Region) PerimeterSensors() []planar.NodeID {
	seen := make(map[planar.NodeID]bool)
	var out []planar.NodeID
	for _, cr := range r.CutRoads() {
		de := r.w.Dual.EdgeOf[cr.Road]
		if de == planar.NoEdge {
			continue // bridge road: no dual sensor pair
		}
		e := r.w.Dual.G.Edge(de)
		for _, n := range []planar.NodeID{e.U, e.V} {
			if n != r.w.Dual.OuterNode && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// Counter provides the count functions C(γ±, t) over tracking forms. The
// exact Store implements it by binary search on the stored timestamps;
// the learned store (internal/learned) implements it by model inference.
type Counter interface {
	// RoadCrossings returns the number of crossing events on road with
	// destination endpoint toward, up to and including time t.
	RoadCrossings(road planar.EdgeID, toward planar.NodeID, t float64) float64
	// WorldCrossings returns the number of world-entry (entering=true) or
	// world-exit events at the gateway junction up to and including t.
	WorldCrossings(gateway planar.NodeID, entering bool, t float64) float64
	// WorldJunctions returns the junctions that carry world edges (any
	// entry or exit events). For generated workloads these are gateways;
	// map-matched real traces may appear and vanish anywhere.
	WorldJunctions() []planar.NodeID
}

// EventLister enumerates raw perimeter events; only identifier-free
// timestamps are exposed. The exact Store implements it; learned stores
// do not (their whole point is to discard the raw sequence).
type EventLister interface {
	// RoadEventsIn appends the signed perimeter events of road in (t1,t2]
	// to dst: +1 for crossings toward `toward`, −1 away.
	RoadEventsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent
	// WorldEventsIn appends gateway world events in (t1,t2]: +1 enter,
	// −1 leave.
	WorldEventsIn(gateway planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent
}

// SignedEvent is a perimeter crossing with its occupancy delta.
type SignedEvent struct {
	T     float64
	Delta int
}

// EventReq identifies one perimeter event list: either a road's signed
// crossings toward an endpoint or a gateway's world events.
type EventReq struct {
	// World selects the gateway form; otherwise Road/Toward apply.
	World   bool
	Road    planar.EdgeID
	Toward  planar.NodeID
	Gateway planar.NodeID
}

// BatchEventLister is an optional EventLister extension for stores that
// can fetch many perimeter event lists in one call — the network-backed
// cluster store answers a whole region perimeter with one scatter RPC
// per involved cell instead of one round-trip per cut road.
//
// Contract: the result must be exactly the concatenation, in request
// order, of what per-request RoadEventsIn/WorldEventsIn calls would
// append. perimeterEvents sorts the sequence with sort.Slice, whose
// (deterministic) tie handling depends on input order — so an
// implementation that reorders requests would break bit-identity with
// the single-process engine even though the multiset of events is the
// same.
type BatchEventLister interface {
	// PerimeterEventsIn appends the signed events of every request over
	// (t1, t2] to dst, in request order.
	PerimeterEventsIn(reqs []EventReq, t1, t2 float64, dst []SignedEvent) []SignedEvent
}

// IntervalCounter is an optional Counter extension: the count of
// crossings inside a half-open interval (t1, t2], answered in one call
// instead of two prefix counts. The exact store answers it with the two
// binary searches fused under one lock acquisition.
type IntervalCounter interface {
	// RoadCrossingsIn returns the number of crossings of road toward the
	// given endpoint with timestamps in (t1, t2].
	RoadCrossingsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64) float64
	// WorldCrossingsIn returns the number of world-entry (entering=true)
	// or world-exit events at the gateway in (t1, t2].
	WorldCrossingsIn(gateway planar.NodeID, entering bool, t1, t2 float64) float64
}

// BatchCounter is an optional Counter extension for stores that can
// integrate a whole region perimeter in one call — one lock acquisition
// and one tracker fetch per cut road, instead of one of each per count.
// The counting theorems dispatch to it when available; the accumulation
// order is specified so that results are bit-identical to the per-edge
// reference kernels (the property tests assert this).
type BatchCounter interface {
	// CountCuts returns the boundary integral at time t:
	//   Σ_cuts [C(γ⁺,t) − C(γ⁻,t)] + Σ_worldJs [C(in,t) − C(out,t)]
	// accumulated in slice order, cuts first.
	CountCuts(cuts []CutRoad, worldJs []planar.NodeID, t float64) float64
	// CountCutsTimes evaluates the same integral at every probe time
	// ts[i], fetching each tracker exactly once, and appends the per-time
	// totals to dst.
	CountCutsTimes(cuts []CutRoad, worldJs []planar.NodeID, ts []float64, dst []float64) []float64
	// CutFlow returns the fused net flow over (t1, t2]:
	//   CountCuts(cuts, worldJs, t2) − CountCuts(cuts, worldJs, t1)
	// computed in a single perimeter pass.
	CutFlow(cuts []CutRoad, worldJs []planar.NodeID, t1, t2 float64) float64
}

// SnapshotCount evaluates Theorem 4.1/4.2: the number of objects inside
// the region at time t, as the boundary integral of in − out counts.
// Stores implementing BatchCounter answer it in one perimeter pass under
// a single lock acquisition.
func SnapshotCount(c Counter, r *Region, t float64) float64 {
	if bc, ok := c.(BatchCounter); ok {
		return bc.CountCuts(r.CutRoads(), r.worldJunctionsInside(c), t)
	}
	return SnapshotCountReference(c, r, t)
}

// SnapshotCountReference is the per-edge reference implementation of
// SnapshotCount: two prefix counts per cut road through the plain
// Counter interface. Kept as the oracle the fast-path property tests
// compare against.
func SnapshotCountReference(c Counter, r *Region, t float64) float64 {
	var total float64
	for _, cr := range r.CutRoads() {
		e := r.w.Star.Edge(cr.Road)
		total += c.RoadCrossings(cr.Road, cr.Inside, t)
		total -= c.RoadCrossings(cr.Road, e.Other(cr.Inside), t)
	}
	for _, g := range r.worldJunctionsInside(c) {
		total += c.WorldCrossings(g, true, t)
		total -= c.WorldCrossings(g, false, t)
	}
	return total
}

// TransientCount evaluates Theorem 4.3: the net number of objects that
// entered minus left the region during (t1, t2]. Negative values mean net
// outflow, as in the paper.
//
// The fast path is a single perimeter pass: BatchCounter stores fuse the
// whole integral under one lock acquisition; IntervalCounter stores fuse
// the two prefix counts per direction into one interval count. The
// reference path walks the perimeter twice (one SnapshotCount per
// endpoint).
func TransientCount(c Counter, r *Region, t1, t2 float64) float64 {
	if bc, ok := c.(BatchCounter); ok {
		return bc.CutFlow(r.CutRoads(), r.worldJunctionsInside(c), t1, t2)
	}
	if ic, ok := c.(IntervalCounter); ok {
		var total float64
		for _, cr := range r.CutRoads() {
			e := r.w.Star.Edge(cr.Road)
			total += ic.RoadCrossingsIn(cr.Road, cr.Inside, t1, t2)
			total -= ic.RoadCrossingsIn(cr.Road, e.Other(cr.Inside), t1, t2)
		}
		for _, g := range r.worldJunctionsInside(c) {
			total += ic.WorldCrossingsIn(g, true, t1, t2)
			total -= ic.WorldCrossingsIn(g, false, t1, t2)
		}
		return total
	}
	return TransientCountReference(c, r, t1, t2)
}

// TransientCountReference is the seed two-snapshot implementation of
// TransientCount: two full perimeter walks, four binary searches and
// four lock acquisitions per cut road. Kept as the oracle the fast-path
// property tests and benchmarks compare against.
func TransientCountReference(c Counter, r *Region, t1, t2 float64) float64 {
	return SnapshotCountReference(c, r, t2) - SnapshotCountReference(c, r, t1)
}

// StaticCount returns the number of objects present in the region for the
// whole interval [t1, t2], computed without identifiers as
// min over t∈[t1,t2] of SnapshotCount(t): the tightest value derivable
// from boundary counts alone. It is exact unless an enter/leave pair of
// two different objects compensates inside the window; see DESIGN.md §6.
func StaticCount(c Counter, el EventLister, r *Region, t1, t2 float64) float64 {
	inside := SnapshotCount(c, r, t1)
	minInside := inside
	for _, ev := range perimeterEvents(c, el, r, t1, t2) {
		inside += float64(ev.Delta)
		if inside < minInside {
			minInside = inside
		}
	}
	return minInside
}

// StaticCountSampled approximates StaticCount when only a Counter is
// available (learned stores): it takes the minimum of SnapshotCount over
// `samples` evenly spaced probe times in [t1, t2]. samples < 2 is raised
// to 2 (the interval endpoints).
//
// BatchCounter stores evaluate all probes in one perimeter pass: each
// cut road's tracker is fetched once and probed at every sample time,
// instead of re-walking the perimeter (and re-locking the store) per
// probe as the reference does.
func StaticCountSampled(c Counter, r *Region, t1, t2 float64, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	if bc, ok := c.(BatchCounter); ok {
		ts := probeTimes(t1, t2, samples)
		vals := bc.CountCutsTimes(r.CutRoads(), r.worldJunctionsInside(c), ts, make([]float64, 0, samples))
		min := vals[0]
		for _, v := range vals[1:] {
			if v < min {
				min = v
			}
		}
		return min
	}
	return StaticCountSampledReference(c, r, t1, t2, samples)
}

// StaticCountSampledReference is the seed implementation of
// StaticCountSampled: one full SnapshotCount perimeter walk per probe
// time. Kept as the oracle the fast-path property tests compare against.
func StaticCountSampledReference(c Counter, r *Region, t1, t2 float64, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	step := (t2 - t1) / float64(samples-1)
	min := SnapshotCountReference(c, r, t1)
	for i := 1; i < samples; i++ {
		if v := SnapshotCountReference(c, r, t1+step*float64(i)); v < min {
			min = v
		}
	}
	return min
}

// probeTimes returns the `samples` evenly spaced probe instants of
// [t1, t2] — exactly the instants the reference implementation visits,
// so fast-path and reference results agree bit for bit.
func probeTimes(t1, t2 float64, samples int) []float64 {
	step := (t2 - t1) / float64(samples-1)
	ts := make([]float64, samples)
	ts[0] = t1
	for i := 1; i < samples; i++ {
		ts[i] = t1 + step*float64(i)
	}
	return ts
}

// perimeterEvents gathers the signed boundary events of r in (t1,t2],
// sorted by time. BatchEventLister stores collect the whole perimeter
// in one batched call; the request order below matches the per-element
// loop exactly, which the batch contract turns into an identical
// pre-sort sequence — and therefore identical sort.Slice output.
func perimeterEvents(c Counter, el EventLister, r *Region, t1, t2 float64) []SignedEvent {
	cuts := r.CutRoads()
	worldJs := r.worldJunctionsInside(c)
	var events []SignedEvent
	if bl, ok := el.(BatchEventLister); ok {
		reqs := make([]EventReq, 0, len(cuts)+len(worldJs))
		for _, cr := range cuts {
			reqs = append(reqs, EventReq{Road: cr.Road, Toward: cr.Inside})
		}
		for _, g := range worldJs {
			reqs = append(reqs, EventReq{World: true, Gateway: g})
		}
		events = bl.PerimeterEventsIn(reqs, t1, t2, nil)
	} else {
		for _, cr := range cuts {
			events = el.RoadEventsIn(cr.Road, cr.Inside, t1, t2, events)
		}
		for _, g := range worldJs {
			events = el.WorldEventsIn(g, t1, t2, events)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}
