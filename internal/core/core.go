// Package core implements the paper's primary contribution: privacy-aware
// spatiotemporal range counting with discrete differential 1-forms on the
// planar sensing graph.
//
// Movements of objects are never stored as trajectories. Instead, every
// road (mobility-graph edge ★e) carries a tracking form on its dual
// sensing edge e: two monotone sequences of crossing timestamps, one per
// direction (the paper's γ⁺/γ⁻ pair, Eq. 8). Region counts are obtained by
// integrating `in − out` along the region perimeter (Theorems 4.1–4.3),
// which cancels objects that leave and re-enter — the identifier-free
// solution to the double counting problem.
//
// Objects enter and leave the world through gateway junctions; those
// virtual "world edges" realize the paper's ★v_ext infinity node and make
// perimeter integration exact on the unsampled graph (see the property
// tests in theorems_test.go).
package core

import (
	"fmt"
	"sort"

	"repro/internal/planar"
	"repro/internal/roadnet"
)

// Region is a query region expressed as a union of sensing-graph faces,
// i.e. a set of junctions of the mobility graph (vertex–face duality).
type Region struct {
	w         *roadnet.World
	inside    []bool
	junctions []planar.NodeID
	// cutCache, when non-nil, is the precomputed perimeter (set by
	// sampled-graph region approximation, which derives it from the
	// monitored edge set in O(|E(G̃)|) instead of scanning the region).
	cutCache []CutRoad
}

// NewRegion builds a Region from a set of junctions of w's mobility
// graph. Duplicate IDs are tolerated; out-of-range IDs are an error.
func NewRegion(w *roadnet.World, junctions []planar.NodeID) (*Region, error) {
	r := &Region{w: w, inside: make([]bool, w.Star.NumNodes())}
	for _, j := range junctions {
		if j < 0 || int(j) >= len(r.inside) {
			return nil, fmt.Errorf("core: junction %d out of range [0,%d)", j, len(r.inside))
		}
		if !r.inside[j] {
			r.inside[j] = true
			r.junctions = append(r.junctions, j)
		}
	}
	return r, nil
}

// World returns the world the region is defined on.
func (r *Region) World() *roadnet.World { return r.w }

// Contains reports whether junction j lies in the region.
func (r *Region) Contains(j planar.NodeID) bool {
	return j >= 0 && int(j) < len(r.inside) && r.inside[j]
}

// Junctions returns the junctions of the region. Callers must not modify
// the returned slice.
func (r *Region) Junctions() []planar.NodeID { return r.junctions }

// Size returns the number of faces (junctions) in the region — the
// paper's ω(σ) cell weight.
func (r *Region) Size() int { return len(r.junctions) }

// Empty reports whether the region contains no faces.
func (r *Region) Empty() bool { return len(r.junctions) == 0 }

// CutRoad is a perimeter element of a Region: a road with exactly one
// endpoint inside. Crossings toward Inside are inflow (γ⁺), away are
// outflow (γ⁻) when integrating the boundary.
type CutRoad struct {
	Road   planar.EdgeID
	Inside planar.NodeID
}

// SetCutRoads installs a precomputed perimeter. The caller asserts that
// cuts is exactly the set CutRoads would compute; the sampled package
// uses this to answer queries by touching only monitored sensing edges,
// which is what an in-network deployment does.
func (r *Region) SetCutRoads(cuts []CutRoad) { r.cutCache = cuts }

// CutRoads returns the perimeter of the region: every road with exactly
// one endpoint inside, each reported once. This is the 1-chain ∂Q_R the
// differential forms are integrated along.
func (r *Region) CutRoads() []CutRoad {
	if r.cutCache != nil {
		return r.cutCache
	}
	var out []CutRoad
	for _, j := range r.junctions {
		for _, e := range r.w.Star.Incident(j) {
			if !r.Contains(r.w.Star.Edge(e).Other(j)) {
				out = append(out, CutRoad{Road: e, Inside: j})
			}
		}
	}
	return out
}

// worldJunctionsInside filters a counter's world-edge junctions to those
// contained in the region; their world edges (to ★v_ext) are part of the
// perimeter.
func (r *Region) worldJunctionsInside(c Counter) []planar.NodeID {
	var out []planar.NodeID
	for _, g := range c.WorldJunctions() {
		if r.Contains(g) {
			out = append(out, g)
		}
	}
	return out
}

// PerimeterSensors returns the distinct sensing-graph nodes flanking the
// region's cut roads — the sensors a perimeter-routed query must access.
func (r *Region) PerimeterSensors() []planar.NodeID {
	seen := make(map[planar.NodeID]bool)
	var out []planar.NodeID
	for _, cr := range r.CutRoads() {
		de := r.w.Dual.EdgeOf[cr.Road]
		if de == planar.NoEdge {
			continue // bridge road: no dual sensor pair
		}
		e := r.w.Dual.G.Edge(de)
		for _, n := range []planar.NodeID{e.U, e.V} {
			if n != r.w.Dual.OuterNode && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// Counter provides the count functions C(γ±, t) over tracking forms. The
// exact Store implements it by binary search on the stored timestamps;
// the learned store (internal/learned) implements it by model inference.
type Counter interface {
	// RoadCrossings returns the number of crossing events on road with
	// destination endpoint toward, up to and including time t.
	RoadCrossings(road planar.EdgeID, toward planar.NodeID, t float64) float64
	// WorldCrossings returns the number of world-entry (entering=true) or
	// world-exit events at the gateway junction up to and including t.
	WorldCrossings(gateway planar.NodeID, entering bool, t float64) float64
	// WorldJunctions returns the junctions that carry world edges (any
	// entry or exit events). For generated workloads these are gateways;
	// map-matched real traces may appear and vanish anywhere.
	WorldJunctions() []planar.NodeID
}

// EventLister enumerates raw perimeter events; only identifier-free
// timestamps are exposed. The exact Store implements it; learned stores
// do not (their whole point is to discard the raw sequence).
type EventLister interface {
	// RoadEventsIn appends the signed perimeter events of road in (t1,t2]
	// to dst: +1 for crossings toward `toward`, −1 away.
	RoadEventsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent
	// WorldEventsIn appends gateway world events in (t1,t2]: +1 enter,
	// −1 leave.
	WorldEventsIn(gateway planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent
}

// SignedEvent is a perimeter crossing with its occupancy delta.
type SignedEvent struct {
	T     float64
	Delta int
}

// SnapshotCount evaluates Theorem 4.1/4.2: the number of objects inside
// the region at time t, as the boundary integral of in − out counts.
func SnapshotCount(c Counter, r *Region, t float64) float64 {
	var total float64
	for _, cr := range r.CutRoads() {
		e := r.w.Star.Edge(cr.Road)
		total += c.RoadCrossings(cr.Road, cr.Inside, t)
		total -= c.RoadCrossings(cr.Road, e.Other(cr.Inside), t)
	}
	for _, g := range r.worldJunctionsInside(c) {
		total += c.WorldCrossings(g, true, t)
		total -= c.WorldCrossings(g, false, t)
	}
	return total
}

// TransientCount evaluates Theorem 4.3: the net number of objects that
// entered minus left the region during (t1, t2]. Negative values mean net
// outflow, as in the paper.
func TransientCount(c Counter, r *Region, t1, t2 float64) float64 {
	return SnapshotCount(c, r, t2) - SnapshotCount(c, r, t1)
}

// StaticCount returns the number of objects present in the region for the
// whole interval [t1, t2], computed without identifiers as
// min over t∈[t1,t2] of SnapshotCount(t): the tightest value derivable
// from boundary counts alone. It is exact unless an enter/leave pair of
// two different objects compensates inside the window; see DESIGN.md §6.
func StaticCount(c Counter, el EventLister, r *Region, t1, t2 float64) float64 {
	inside := SnapshotCount(c, r, t1)
	minInside := inside
	for _, ev := range perimeterEvents(c, el, r, t1, t2) {
		inside += float64(ev.Delta)
		if inside < minInside {
			minInside = inside
		}
	}
	return minInside
}

// StaticCountSampled approximates StaticCount when only a Counter is
// available (learned stores): it takes the minimum of SnapshotCount over
// `samples` evenly spaced probe times in [t1, t2]. samples < 2 is raised
// to 2 (the interval endpoints).
func StaticCountSampled(c Counter, r *Region, t1, t2 float64, samples int) float64 {
	if samples < 2 {
		samples = 2
	}
	step := (t2 - t1) / float64(samples-1)
	min := SnapshotCount(c, r, t1)
	for i := 1; i < samples; i++ {
		if v := SnapshotCount(c, r, t1+step*float64(i)); v < min {
			min = v
		}
	}
	return min
}

// perimeterEvents gathers the signed boundary events of r in (t1,t2],
// sorted by time.
func perimeterEvents(c Counter, el EventLister, r *Region, t1, t2 float64) []SignedEvent {
	var events []SignedEvent
	for _, cr := range r.CutRoads() {
		events = el.RoadEventsIn(cr.Road, cr.Inside, t1, t2, events)
	}
	for _, g := range r.worldJunctionsInside(c) {
		events = el.WorldEventsIn(g, t1, t2, events)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}
