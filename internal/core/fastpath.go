package core

import (
	"runtime"
	"sync"

	"repro/internal/planar"
)

// This file implements the Store side of the fast-path query kernel:
// the IntervalCounter and BatchCounter extensions that let the counting
// theorems integrate a whole region perimeter in one pass with one
// tracker-snapshot load per cut road and zero lock acquisitions. Large
// perimeters are integrated in parallel across worker goroutines.

// parallelCutThreshold is the perimeter size above which CountCuts and
// CutFlow split the cut set across workers. Below it, goroutine startup
// costs more than the binary searches it saves.
const parallelCutThreshold = 1024

// RoadCrossingsIn implements IntervalCounter: the number of crossings of
// road toward the given endpoint in (t1, t2], via two binary searches on
// one published snapshot.
func (s *Store) RoadCrossingsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64) float64 {
	tr := s.loadTracker(road)
	if tr == nil {
		return 0
	}
	e := s.w.Star.Edge(road)
	return float64(tr.countInDir(toward == e.V, t1, t2))
}

// WorldCrossingsIn implements IntervalCounter for gateway world edges.
func (s *Store) WorldCrossingsIn(g planar.NodeID, entering bool, t1, t2 float64) float64 {
	wv := s.worldViewOf(g)
	if entering {
		return float64(countIn(wv.in[g], t1, t2))
	}
	return float64(countIn(wv.out[g], t1, t2))
}

// CountCuts implements BatchCounter: the boundary integral at time t in
// one perimeter pass over the published snapshots. Counts are integers,
// so the integer accumulation is exactly the float accumulation of the
// reference kernel.
func (s *Store) CountCuts(cuts []CutRoad, worldJs []planar.NodeID, t float64) float64 {
	var total int
	if len(cuts) < parallelCutThreshold {
		// Inline loop: keeping the closure out of the common case keeps
		// the whole query allocation-free.
		for _, cr := range cuts {
			total += s.cutNetCount(cr, t)
		}
	} else {
		total = s.parallelSum(cuts, func(cr CutRoad) int { return s.cutNetCount(cr, t) })
	}
	for _, g := range worldJs {
		wv := s.worldViewOf(g)
		total += countLE(wv.in[g], t) - countLE(wv.out[g], t)
	}
	return float64(total)
}

// cutNetCount is one perimeter element of the boundary integral at t:
// crossings into the region minus crossings out, on one cut road.
func (s *Store) cutNetCount(cr CutRoad, t float64) int {
	tr := s.loadTracker(cr.Road)
	if tr == nil {
		return 0
	}
	fwd := cr.Inside == s.w.Star.Edge(cr.Road).V
	return tr.Count(fwd, t) - tr.Count(!fwd, t)
}

// CutFlow implements BatchCounter: the fused transient integral over
// (t1, t2] — one perimeter pass, two binary searches per direction, no
// lock acquisitions. Equals CountCuts(t2) − CountCuts(t1) on a
// quiescent store.
func (s *Store) CutFlow(cuts []CutRoad, worldJs []planar.NodeID, t1, t2 float64) float64 {
	var total int
	if len(cuts) < parallelCutThreshold {
		for _, cr := range cuts {
			total += s.cutNetFlow(cr, t1, t2)
		}
	} else {
		total = s.parallelSum(cuts, func(cr CutRoad) int { return s.cutNetFlow(cr, t1, t2) })
	}
	for _, g := range worldJs {
		wv := s.worldViewOf(g)
		total += countIn(wv.in[g], t1, t2) - countIn(wv.out[g], t1, t2)
	}
	return float64(total)
}

// cutNetFlow is one perimeter element of the interval integral over
// (t1, t2] on one cut road.
func (s *Store) cutNetFlow(cr CutRoad, t1, t2 float64) int {
	tr := s.loadTracker(cr.Road)
	if tr == nil {
		return 0
	}
	fwd := cr.Inside == s.w.Star.Edge(cr.Road).V
	return tr.countInDir(fwd, t1, t2) - tr.countInDir(!fwd, t1, t2)
}

// CountCutsTimes implements BatchCounter: the boundary integral at every
// probe time, loading each cut road's snapshot once instead of
// re-walking the perimeter per probe.
func (s *Store) CountCutsTimes(cuts []CutRoad, worldJs []planar.NodeID, ts []float64, dst []float64) []float64 {
	totals := make([]int, len(ts))
	for _, cr := range cuts {
		tr := s.loadTracker(cr.Road)
		if tr == nil {
			continue
		}
		fwd := cr.Inside == s.w.Star.Edge(cr.Road).V
		for i, t := range ts {
			totals[i] += tr.Count(fwd, t) - tr.Count(!fwd, t)
		}
	}
	for _, g := range worldJs {
		wv := s.worldViewOf(g)
		in, out := wv.in[g], wv.out[g]
		for i, t := range ts {
			totals[i] += countLE(in, t) - countLE(out, t)
		}
	}
	for _, v := range totals {
		dst = append(dst, float64(v))
	}
	return dst
}

// parallelSum sums per-cut contributions, splitting the cut set across
// min(GOMAXPROCS, 8) workers when it exceeds parallelCutThreshold.
// Integer partial sums make the split order-insensitive, so parallel
// and serial results are identical. Workers read the same immutable
// published snapshots any serial reader would, so no synchronization
// with writers is needed.
func (s *Store) parallelSum(cuts []CutRoad, f func(CutRoad) int) int {
	if len(cuts) < parallelCutThreshold {
		total := 0
		for _, cr := range cuts {
			total += f(cr)
		}
		return total
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	partial := make([]int, workers)
	chunk := (len(cuts) + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		if lo >= len(cuts) {
			break
		}
		hi := lo + chunk
		if hi > len(cuts) {
			hi = len(cuts)
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			sum := 0
			for _, cr := range cuts[lo:hi] {
				sum += f(cr)
			}
			partial[wk] = sum
		}(wk, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range partial {
		total += p
	}
	return total
}
