package core

import (
	"fmt"

	"repro/internal/planar"
)

// EventKind distinguishes the three store-ingestible crossing kinds.
type EventKind uint8

// Batch event kinds.
const (
	// EventEnter is a world-entry at a gateway (from ★v_ext).
	EventEnter EventKind = iota
	// EventMove is a road traversal between two junctions.
	EventMove
	// EventLeave is a world-exit at a gateway (to ★v_ext).
	EventLeave
)

// Event is one identifier-free crossing event for batch ingestion.
// Move events set Road and From; Enter/Leave events set Gateway.
type Event struct {
	T    float64
	Kind EventKind
	// Road and From describe a Move: the object traverses Road starting
	// at junction From, crossing the dual sensing edge at time T.
	Road planar.EdgeID
	From planar.NodeID
	// Gateway is the world junction of an Enter/Leave.
	Gateway planar.NodeID
}

// MoveEvent builds a Move batch event.
func MoveEvent(road planar.EdgeID, from planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventMove, Road: road, From: from}
}

// EnterEvent builds a world-entry batch event.
func EnterEvent(gateway planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventEnter, Gateway: gateway}
}

// LeaveEvent builds a world-exit batch event.
func LeaveEvent(gateway planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventLeave, Gateway: gateway}
}

// RecordBatch ingests a time-ordered batch of events under a single
// write-lock acquisition — the batch counterpart of RecordMove /
// RecordEnter / RecordLeave for high-throughput ingestion.
//
// The batch is atomic: every event is validated (kind, road range,
// endpoint membership, global time ordering against both the store
// clock and earlier events of the batch) before anything is applied, so
// a failed call leaves the store unchanged.
func (s *Store) RecordBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Pass 1: validate against the store and the batch's own ordering.
	clock := s.clock
	for i, ev := range events {
		if ev.T < clock {
			return fmt.Errorf("core: batch event %d at %v precedes time %v (events must be time ordered)", i, ev.T, clock)
		}
		clock = ev.T
		switch ev.Kind {
		case EventMove:
			if ev.Road < 0 || int(ev.Road) >= len(s.roads) {
				return fmt.Errorf("core: batch event %d: road %d out of range", i, ev.Road)
			}
			e := s.w.Star.Edge(ev.Road)
			if ev.From != e.U && ev.From != e.V {
				return fmt.Errorf("core: batch event %d: node %d is not an endpoint of road %d", i, ev.From, ev.Road)
			}
		case EventEnter, EventLeave:
			// Any junction may carry world edges (map-matched real traces
			// appear and vanish anywhere), as with RecordEnter/RecordLeave.
		default:
			return fmt.Errorf("core: batch event %d: unknown kind %d", i, ev.Kind)
		}
	}
	// Pass 2: apply.
	for _, ev := range events {
		switch ev.Kind {
		case EventMove:
			e := s.w.Star.Edge(ev.Road)
			s.roads[ev.Road].Record(ev.From == e.U, ev.T)
		case EventEnter:
			if len(s.worldIn[ev.Gateway]) == 0 && len(s.worldOut[ev.Gateway]) == 0 {
				s.worldJs = nil
			}
			s.worldIn[ev.Gateway] = append(s.worldIn[ev.Gateway], ev.T)
		case EventLeave:
			if len(s.worldIn[ev.Gateway]) == 0 && len(s.worldOut[ev.Gateway]) == 0 {
				s.worldJs = nil
			}
			s.worldOut[ev.Gateway] = append(s.worldOut[ev.Gateway], ev.T)
		}
	}
	s.clock = clock
	s.events += len(events)
	return nil
}
