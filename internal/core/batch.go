package core

import (
	"fmt"
	"sync"

	"repro/internal/planar"
)

// EventKind distinguishes the three store-ingestible crossing kinds.
type EventKind uint8

// Batch event kinds.
const (
	// EventEnter is a world-entry at a gateway (from ★v_ext).
	EventEnter EventKind = iota
	// EventMove is a road traversal between two junctions.
	EventMove
	// EventLeave is a world-exit at a gateway (to ★v_ext).
	EventLeave
)

// Event is one identifier-free crossing event for batch ingestion.
// Move events set Road and From; Enter/Leave events set Gateway.
type Event struct {
	T    float64
	Kind EventKind
	// Road and From describe a Move: the object traverses Road starting
	// at junction From, crossing the dual sensing edge at time T.
	Road planar.EdgeID
	From planar.NodeID
	// Gateway is the world junction of an Enter/Leave.
	Gateway planar.NodeID
}

// MoveEvent builds a Move batch event.
func MoveEvent(road planar.EdgeID, from planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventMove, Road: road, From: from}
}

// EnterEvent builds a world-entry batch event.
func EnterEvent(gateway planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventEnter, Gateway: gateway}
}

// LeaveEvent builds a world-exit batch event.
func LeaveEvent(gateway planar.NodeID, t float64) Event {
	return Event{T: t, Kind: EventLeave, Gateway: gateway}
}

// batchScratch is the reusable working set of one RecordBatch call,
// pooled so steady-state ingestion allocates only the tracking forms it
// republishes. The per-road tables are flat slices indexed by EdgeID —
// a batch of n events costs two array lookups per event instead of two
// map probes — and are reset sparsely via the touched-road list, so
// reuse is O(roads touched), not O(roads in the world).
type batchScratch struct {
	// adds counts appends per road: [fwd, rev], indexed by EdgeID.
	adds [][2]int32
	// clones holds each touched road's private working clone, indexed by
	// EdgeID.
	clones []*Tracker
	// roads lists the distinct touched roads in first-touch order.
	roads []planar.EdgeID
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// reset sparsely clears the per-road tables (only the entries this
// batch touched) and grows them when the store has more roads than the
// pooled scratch has seen.
func (sc *batchScratch) reset(nRoads int) {
	for _, r := range sc.roads {
		sc.adds[r] = [2]int32{}
		sc.clones[r] = nil
	}
	sc.roads = sc.roads[:0]
	if len(sc.adds) < nRoads {
		sc.adds = make([][2]int32, nRoads)
		sc.clones = make([]*Tracker, nRoads)
	}
}

// RecordBatch ingests a batch of events — the batch counterpart of
// RecordMove / RecordEnter / RecordLeave for high-throughput ingestion.
// Only the lock stripes of the edges the batch touches are held, so
// concurrent batches over disjoint stripes apply in parallel.
//
// The batch is atomic: every event is validated (kind, road range,
// endpoint membership, time ordering per the store's Ordering — under
// OrderGlobal against both the store clock and earlier events of the
// batch) before anything is published, so a failed call leaves the
// store observably unchanged.
func (s *Store) RecordBatch(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	sc := batchPool.Get().(*batchScratch)
	sc.reset(len(s.roads))
	defer batchPool.Put(sc)

	// Pass 1 (lock-free): structural validation, global-order validation
	// when configured, touched-stripe mask, per-road append counts.
	global := s.GetOrdering() == OrderGlobal
	clock := s.Clock()
	maxT := events[0].T
	var mask uint32
	for i, ev := range events {
		if global {
			if ev.T < clock {
				return fmt.Errorf("core: batch event %d at %v precedes time %v (events must be time ordered)", i, ev.T, clock)
			}
			clock = ev.T
		}
		if ev.T > maxT {
			maxT = ev.T
		}
		switch ev.Kind {
		case EventMove:
			if ev.Road < 0 || int(ev.Road) >= len(s.roads) {
				return fmt.Errorf("core: batch event %d: road %d out of range", i, ev.Road)
			}
			e := s.w.Star.Edge(ev.Road)
			if ev.From != e.U && ev.From != e.V {
				return fmt.Errorf("core: batch event %d: node %d is not an endpoint of road %d", i, ev.From, ev.Road)
			}
			c := &sc.adds[ev.Road]
			if c[0] == 0 && c[1] == 0 {
				sc.roads = append(sc.roads, ev.Road)
			}
			if ev.From == e.U {
				c[0]++
			} else {
				c[1]++
			}
			mask |= 1 << shardOfRoad(ev.Road)
		case EventEnter, EventLeave:
			// Any junction may carry world edges (map-matched real traces
			// appear and vanish anywhere), as with RecordEnter/RecordLeave.
			mask |= 1 << shardOfNode(ev.Gateway)
		default:
			return fmt.Errorf("core: batch event %d: unknown kind %d", i, ev.Kind)
		}
	}

	// Lock every touched stripe in ascending index order (deadlock-free
	// against concurrent batches locking overlapping stripe sets).
	for i := 0; i < numShards; i++ {
		if mask&(1<<i) != 0 {
			s.shards[i].lock()
		}
	}
	unlock := func() {
		for i := 0; i < numShards; i++ {
			if mask&(1<<i) != 0 {
				s.shards[i].mu.Unlock()
			}
		}
	}

	// Pass 2 (under stripe locks): apply into private clones. Tracker
	// clones live in one arena allocation and are presized from the
	// pass-1 counts, so a batch republishing k roads costs O(1) + at
	// most one timestamp-array growth per saturated direction. Clones
	// stay private until publication, so a per-edge order violation
	// discovered here still aborts with the store unchanged.
	arena := make([]Tracker, 0, len(sc.roads))
	var worldNext [numShards]*worldView
	newGateway := false
	for i, ev := range events {
		switch ev.Kind {
		case EventMove:
			tr := sc.clones[ev.Road]
			if tr == nil {
				var next Tracker
				if old := s.roads[ev.Road].Load(); old != nil {
					next = *old
				}
				c := sc.adds[ev.Road]
				next.fwd = growFor(next.fwd, int(c[0]))
				next.rev = growFor(next.rev, int(c[1]))
				arena = append(arena, next)
				tr = &arena[len(arena)-1]
				sc.clones[ev.Road] = tr
			}
			fwd := ev.From == s.w.Star.Edge(ev.Road).U
			if last, ok := tr.last(fwd); ok && ev.T < last {
				unlock()
				return fmt.Errorf("core: batch event %d at %v precedes last crossing %v on road %d (per-edge order)", i, ev.T, last, ev.Road)
			}
			tr.Record(fwd, ev.T)
		case EventEnter, EventLeave:
			si := shardOfNode(ev.Gateway)
			wv := worldNext[si]
			if wv == nil {
				cur := s.shards[si].world.Load()
				wv = &worldView{in: cloneWorldMap(cur.in), out: cloneWorldMap(cur.out)}
				worldNext[si] = wv
			}
			side := wv.in
			if ev.Kind == EventLeave {
				side = wv.out
			}
			if ts := side[ev.Gateway]; len(ts) > 0 && ev.T < ts[len(ts)-1] {
				unlock()
				return fmt.Errorf("core: batch event %d at %v precedes last world event %v at gateway %d (per-edge order)", i, ev.T, ts[len(ts)-1], ev.Gateway)
			}
			if len(wv.in[ev.Gateway]) == 0 && len(wv.out[ev.Gateway]) == 0 {
				newGateway = true
			}
			side[ev.Gateway] = append(side[ev.Gateway], ev.T)
		}
	}

	// Publish: every touched road and stripe view, then release stripes.
	for _, road := range sc.roads {
		s.roads[road].Store(sc.clones[road])
	}
	for i := range worldNext {
		if worldNext[i] != nil {
			s.shards[i].world.Store(worldNext[i])
		}
	}
	unlock()
	if newGateway {
		s.gatewayGen.Add(1)
	}
	s.commit(maxT, len(events))
	return nil
}
