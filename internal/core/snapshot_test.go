package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

func snapshotTestWorld(t *testing.T) *roadnet.World {
	t.Helper()
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 5, NY: 5, Spacing: 100}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("GridCity: %v", err)
	}
	return w
}

// fillStore ingests a deterministic mixed stream and returns the events.
func fillStore(t *testing.T, s *Store, w *roadnet.World, n int, seed int64) []Event {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	gws := w.Gateways
	var events []Event
	tm := s.Clock()
	for i := 0; i < n; i++ {
		tm += rng.Float64() * 5
		switch rng.Intn(4) {
		case 0:
			events = append(events, EnterEvent(gws[rng.Intn(len(gws))], tm))
		case 1:
			events = append(events, LeaveEvent(gws[rng.Intn(len(gws))], tm))
		default:
			road := planar.EdgeID(rng.Intn(w.Star.NumEdges()))
			e := w.Star.Edge(road)
			from := e.U
			if rng.Intn(2) == 0 {
				from = e.V
			}
			events = append(events, MoveEvent(road, from, tm))
		}
	}
	if err := s.RecordBatch(events); err != nil {
		t.Fatalf("RecordBatch: %v", err)
	}
	return events
}

// queriesEqual asserts bit-identical counting behaviour of two stores
// over a grid of probe regions and times.
func queriesEqual(t *testing.T, w *roadnet.World, a, b *Store, horizon float64) {
	t.Helper()
	bounds := w.Bounds()
	rects := []struct{ fx0, fy0, fx1, fy1 float64 }{
		{0, 0, 1, 1}, {0.1, 0.1, 0.6, 0.7}, {0.3, 0.2, 0.9, 0.9}, {0.45, 0.45, 0.55, 0.55},
	}
	for ri, rc := range rects {
		x0 := bounds.Min.X + rc.fx0*bounds.Width()
		y0 := bounds.Min.Y + rc.fy0*bounds.Height()
		x1 := bounds.Min.X + rc.fx1*bounds.Width()
		y1 := bounds.Min.Y + rc.fy1*bounds.Height()
		js := w.JunctionsIn(geom.NewRect(geom.Pt(x0, y0), geom.Pt(x1, y1)))
		ra, err := NewRegion(w, js)
		if err != nil {
			t.Fatalf("region: %v", err)
		}
		rb, err := NewRegion(w, js)
		if err != nil {
			t.Fatalf("region: %v", err)
		}
		for _, tf := range []float64{0, 0.25, 0.5, 0.75, 1} {
			probe := tf * horizon
			if got, want := SnapshotCount(b, rb, probe), SnapshotCount(a, ra, probe); got != want {
				t.Fatalf("rect %d t=%v: SnapshotCount %v != %v", ri, probe, got, want)
			}
			if got, want := TransientCount(b, rb, probe*0.3, probe), TransientCount(a, ra, probe*0.3, probe); got != want {
				t.Fatalf("rect %d t=%v: TransientCount %v != %v", ri, probe, got, want)
			}
			if got, want := StaticCount(b, b, rb, probe*0.3, probe), StaticCount(a, a, ra, probe*0.3, probe); got != want {
				t.Fatalf("rect %d t=%v: StaticCount %v != %v", ri, probe, got, want)
			}
		}
	}
}

func TestSnapshotExportRestoreRoundTrip(t *testing.T) {
	w := snapshotTestWorld(t)
	src := NewStore(w)
	src.SetOrdering(OrderPerEdge)
	fillStore(t, src, w, 800, 11)

	snap := src.ExportSnapshot()
	dst := NewStore(w)
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got, want := dst.NumEvents(), src.NumEvents(); got != want {
		t.Fatalf("NumEvents %d != %d", got, want)
	}
	if got, want := dst.Clock(), src.Clock(); got != want {
		t.Fatalf("Clock %v != %v", got, want)
	}
	if got, want := dst.GetOrdering(), src.GetOrdering(); got != want {
		t.Fatalf("Ordering %v != %v", got, want)
	}
	queriesEqual(t, w, src, dst, src.Clock())

	// The restored store keeps ingesting: append one more event to both
	// and they must stay identical.
	tmNext := src.Clock() + 1
	road := planar.EdgeID(0)
	from := w.Star.Edge(road).U
	if err := src.RecordMove(road, from, tmNext); err != nil {
		t.Fatalf("src RecordMove: %v", err)
	}
	if err := dst.RecordMove(road, from, tmNext); err != nil {
		t.Fatalf("dst RecordMove: %v", err)
	}
	queriesEqual(t, w, src, dst, src.Clock())
}

func TestSnapshotRestoreIsolation(t *testing.T) {
	// The restore copies timestamps: mutating the source after restore
	// must not leak into the restored store.
	w := snapshotTestWorld(t)
	src := NewStore(w)
	fillStore(t, src, w, 200, 3)
	before := src.NumEvents()
	snap := src.ExportSnapshot()
	dst := NewStore(w)
	if err := dst.RestoreSnapshot(snap); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	fillStore(t, src, w, 200, 4)
	if got := dst.NumEvents(); got != before {
		t.Fatalf("restored store changed after source mutation: %d != %d", got, before)
	}
}

func TestSnapshotRestoreValidation(t *testing.T) {
	w := snapshotTestWorld(t)
	src := NewStore(w)
	fillStore(t, src, w, 100, 5)
	good := src.ExportSnapshot()

	cases := []struct {
		name   string
		mutate func(s *StoreSnapshot)
	}{
		{"non-empty target", nil},
		{"road out of range", func(s *StoreSnapshot) { s.Roads[0].Road = planar.EdgeID(w.Star.NumEdges()) }},
		{"roads out of order", func(s *StoreSnapshot) { s.Roads[0].Road = s.Roads[1].Road }},
		{"unsorted timestamps", func(s *StoreSnapshot) {
			for i := range s.Roads {
				if len(s.Roads[i].Fwd) >= 2 {
					fwd := copyTimes(s.Roads[i].Fwd)
					fwd[0], fwd[len(fwd)-1] = fwd[len(fwd)-1]+1, fwd[0]
					s.Roads[i].Fwd = fwd
					return
				}
			}
		}},
		{"event count mismatch", func(s *StoreSnapshot) { s.Events += 3 }},
		{"clock behind events", func(s *StoreSnapshot) { s.Clock = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := NewStore(w)
			snap := *good
			snap.Roads = append([]RoadForms(nil), good.Roads...)
			snap.Gateways = append([]GatewayEvents(nil), good.Gateways...)
			if tc.mutate == nil {
				fillStore(t, dst, w, 10, 6)
			} else {
				tc.mutate(&snap)
			}
			if err := dst.RestoreSnapshot(&snap); err == nil {
				t.Fatalf("RestoreSnapshot accepted invalid snapshot")
			}
		})
	}
}
