package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/planar"
	"repro/internal/roadnet"
)

// Tracker is the pair of tracking forms (γ⁺, γ⁻) of one sensing edge:
// crossing timestamps per direction over the dual road, kept in
// non-decreasing order. The zero value is an empty tracker ready to use.
//
// Each direction is tiered (DESIGN.md §12): recent timestamps live in a
// mutable hot slice, while a sealed cold prefix — when the store's
// tiered history is enabled — lives in an immutable delta-encoded
// history shared structurally across tracker snapshots. Every sealed
// timestamp precedes (≤) every hot timestamp of its direction, so
// counts compose by addition.
type Tracker struct {
	// fwd holds hot crossings in the road's U→V direction, rev in V→U.
	fwd, rev []float64
	// fwdHist and revHist are the immutable sealed prefixes; nil until
	// the first seal of the direction.
	fwdHist, revHist *history
}

// hot returns the hot-tier slice of one direction.
func (tr *Tracker) hot(forward bool) []float64 {
	if forward {
		return tr.fwd
	}
	return tr.rev
}

// hist returns the sealed history of one direction (possibly nil).
func (tr *Tracker) hist(forward bool) *history {
	if forward {
		return tr.fwdHist
	}
	return tr.revHist
}

// Record appends a crossing at time t in the given direction. Timestamps
// must be appended in non-decreasing order per direction; Store enforces
// ordering for all trackers.
func (tr *Tracker) Record(forward bool, t float64) {
	if forward {
		tr.fwd = append(tr.fwd, t)
	} else {
		tr.rev = append(tr.rev, t)
	}
}

// Count returns the number of crossings in the given direction up to and
// including t — the paper's C(γ, t): sealed-tier count (skip-index
// search) plus hot-tier count (binary search).
func (tr *Tracker) Count(forward bool, t float64) int {
	return tr.hist(forward).countLE(t) + countLE(tr.hot(forward), t)
}

// countInDir returns the number of crossings in (t1, t2] of one
// direction across both tiers.
func (tr *Tracker) countInDir(forward bool, t1, t2 float64) int {
	return tr.Count(forward, t2) - tr.Count(forward, t1)
}

// appendSignedIn appends the direction's events in (t1, t2] to dst with
// the given occupancy delta: sealed events first (decoding only the
// blocks the interval overlaps), then the hot tail — which is time
// order, since every sealed timestamp is ≤ every hot one.
func (tr *Tracker) appendSignedIn(forward bool, delta int, t1, t2 float64, dst []SignedEvent) []SignedEvent {
	dst = tr.hist(forward).appendSigned(dst, delta, t1, t2)
	return appendSigned(dst, tr.hot(forward), delta, t1, t2)
}

// Events returns one direction's full timestamp sequence — the sealed
// prefix materialized (decoded) followed by the hot tail. The returned
// slice is a fresh copy owned by the caller: it never aliases store
// internals, so mutating it cannot corrupt the store and later
// ingestion is never observable through it.
func (tr *Tracker) Events(forward bool) []float64 {
	hot, h := tr.hot(forward), tr.hist(forward)
	if h.hlen() == 0 && len(hot) == 0 {
		return nil
	}
	out := make([]float64, 0, h.hlen()+len(hot))
	out = h.appendTimes(out)
	return append(out, hot...)
}

// Len returns the total number of stored crossings across both tiers.
func (tr *Tracker) Len() int {
	return len(tr.fwd) + len(tr.rev) + tr.fwdHist.hlen() + tr.revHist.hlen()
}

// SealedLen returns the number of sealed (warm-tier) crossings of one
// direction.
func (tr *Tracker) SealedLen(forward bool) int { return tr.hist(forward).hlen() }

// last returns the most recent timestamp of one direction; ok is false
// for an empty direction.
func (tr *Tracker) last(forward bool) (t float64, ok bool) {
	if ts := tr.hot(forward); len(ts) > 0 {
		return ts[len(ts)-1], true
	}
	return tr.hist(forward).hlast()
}

// countLE returns the number of elements of sorted ts that are ≤ t.
func countLE(ts []float64, t float64) int {
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// countIn returns the number of elements of sorted ts in (t1, t2].
func countIn(ts []float64, t1, t2 float64) int {
	return countLE(ts, t2) - countLE(ts, t1)
}

// Store is the exact (non-learned) tracking-form store of a world: one
// Tracker per road plus world-edge event lists per gateway. It is the
// reference Counter and EventLister implementation, and additionally
// implements the IntervalCounter and BatchCounter fast paths: a whole
// perimeter integral runs in one pass with no lock acquisitions.
//
// # Concurrency
//
// The store is sharded: writers serialize on numShards lock stripes
// keyed by edge ID (world edges by junction ID), so ingestion streams
// touching disjoint stripes run in parallel. Reads are lock-free: every
// road's tracking form and every stripe's world-edge maps are published
// as immutable snapshots behind atomic pointers; a reader sees, per
// road, an atomically consistent (γ⁺, γ⁻) pair as of the snapshot it
// loads. A query concurrent with ingestion may observe different roads
// at slightly different ingestion frontiers (per-snapshot consistency,
// not a global cut); once ingestion quiesces — or for any probe time at
// or before the already-ingested horizon — counts are exact. Writes
// that return have been published: a subsequent query on any goroutine
// sees them.
//
// Time ordering is validated per the configured Ordering: OrderGlobal
// (default, one globally monotone stream) or OrderPerEdge (per-form
// monotonicity, for concurrent multi-writer ingestion). In both modes
// an append that would break a tracking form's sort order is rejected,
// never applied.
type Store struct {
	w *roadnet.World
	// roads[e] is the atomically published tracking form of road e; nil
	// until the road's first event.
	roads  []atomic.Pointer[Tracker]
	shards [numShards]shard
	// ordering holds the Ordering (atomic so it can be toggled without
	// racing writers; see SetOrdering).
	ordering atomic.Uint32
	// clockBits is math.Float64bits of the max ingested timestamp.
	clockBits atomic.Uint64
	events    atomic.Int64
	// gatewayGen counts gateway-set changes; worldJs memoizes
	// WorldJunctions for the generation it was built at.
	gatewayGen atomic.Uint64
	worldJs    atomic.Pointer[wjMemo]
	// histCfg is the tiered-history configuration (SetHistoryConfig);
	// nil disables sealing.
	histCfg atomic.Pointer[HistoryConfig]
}

// NewStore returns an empty store over w with OrderGlobal validation.
func NewStore(w *roadnet.World) *Store {
	s := &Store{
		w:     w,
		roads: make([]atomic.Pointer[Tracker], w.Star.NumEdges()),
	}
	for i := range s.shards {
		s.shards[i].world.Store(&worldView{
			in:  map[planar.NodeID][]float64{},
			out: map[planar.NodeID][]float64{},
		})
	}
	return s
}

// SetOrdering selects the time-ordering contract for subsequent writes:
// OrderGlobal for one globally monotone event stream (the default),
// OrderPerEdge for concurrent writers feeding independently clocked
// per-edge streams. Per-form monotonicity — the invariant binary search
// depends on — is enforced in both modes.
func (s *Store) SetOrdering(o Ordering) { s.ordering.Store(uint32(o)) }

// GetOrdering returns the current time-ordering contract.
func (s *Store) GetOrdering() Ordering { return Ordering(s.ordering.Load()) }

// World returns the world the store tracks.
func (s *Store) World() *roadnet.World { return s.w }

// NumEvents returns the total number of ingested crossing events.
func (s *Store) NumEvents() int { return int(s.events.Load()) }

// Clock returns the timestamp of the most recent event.
func (s *Store) Clock() float64 { return math.Float64frombits(s.clockBits.Load()) }

// checkOrder validates t against the store clock under OrderGlobal; in
// OrderPerEdge only per-form monotonicity (checked at apply time under
// the stripe lock) constrains t.
func (s *Store) checkOrder(t float64) error {
	if s.GetOrdering() != OrderGlobal {
		return nil
	}
	if clock := s.Clock(); t < clock {
		return fmt.Errorf("core: event at %v precedes store clock %v (events must be time ordered)", t, clock)
	}
	return nil
}

// RecordMove ingests a crossing of road from endpoint `from` toward the
// other endpoint at time t.
func (s *Store) RecordMove(road planar.EdgeID, from planar.NodeID, t float64) error {
	if road < 0 || int(road) >= len(s.roads) {
		return fmt.Errorf("core: road %d out of range", road)
	}
	e := s.w.Star.Edge(road)
	if from != e.U && from != e.V {
		return fmt.Errorf("core: node %d is not an endpoint of road %d", from, road)
	}
	if err := s.checkOrder(t); err != nil {
		return err
	}
	fwd := from == e.U
	sh := &s.shards[shardOfRoad(road)]
	sh.lock()
	old := s.roads[road].Load()
	var next Tracker
	if old != nil {
		if last, ok := old.last(fwd); ok && t < last {
			sh.mu.Unlock()
			return fmt.Errorf("core: event at %v precedes last crossing %v on road %d (per-edge order)", t, last, road)
		}
		next = *old
	}
	next.Record(fwd, t)
	s.roads[road].Store(&next)
	sh.mu.Unlock()
	s.commit(t, 1)
	return nil
}

// RecordEnter ingests a world-entry at gateway g at time t (an object
// appearing from ★v_ext).
func (s *Store) RecordEnter(g planar.NodeID, t float64) error {
	return s.recordWorld(g, t, true)
}

// RecordLeave ingests a world-exit at gateway g at time t.
func (s *Store) RecordLeave(g planar.NodeID, t float64) error {
	return s.recordWorld(g, t, false)
}

func (s *Store) recordWorld(g planar.NodeID, t float64, entering bool) error {
	if err := s.checkOrder(t); err != nil {
		return err
	}
	sh := &s.shards[shardOfNode(g)]
	sh.lock()
	cur := sh.world.Load()
	side := cur.in
	if !entering {
		side = cur.out
	}
	if ts := side[g]; len(ts) > 0 && t < ts[len(ts)-1] {
		sh.mu.Unlock()
		return fmt.Errorf("core: event at %v precedes last world event %v at gateway %d (per-edge order)", t, ts[len(ts)-1], g)
	}
	newGateway := len(cur.in[g]) == 0 && len(cur.out[g]) == 0
	next := &worldView{in: cur.in, out: cur.out}
	if entering {
		next.in = cloneWorldMap(cur.in)
		next.in[g] = append(next.in[g], t)
	} else {
		next.out = cloneWorldMap(cur.out)
		next.out[g] = append(next.out[g], t)
	}
	sh.world.Store(next)
	sh.mu.Unlock()
	if newGateway {
		s.gatewayGen.Add(1)
	}
	s.commit(t, 1)
	return nil
}

// RoadCrossings implements Counter.
func (s *Store) RoadCrossings(road planar.EdgeID, toward planar.NodeID, t float64) float64 {
	tr := s.loadTracker(road)
	if tr == nil {
		return 0
	}
	e := s.w.Star.Edge(road)
	return float64(tr.Count(toward == e.V, t))
}

// WorldCrossings implements Counter.
func (s *Store) WorldCrossings(g planar.NodeID, entering bool, t float64) float64 {
	wv := s.worldViewOf(g)
	if entering {
		return float64(countLE(wv.in[g], t))
	}
	return float64(countLE(wv.out[g], t))
}

// WorldJunctions implements Counter: the junctions with any world-edge
// events, in ascending order for determinism. The sorted set is
// memoized per gateway generation and rebuilt only after an event of a
// previously unseen gateway, so the steady-state cost is one atomic
// load. Callers must not modify the returned slice.
func (s *Store) WorldJunctions() []planar.NodeID {
	mWJCalls.Inc()
	gen := s.gatewayGen.Load()
	if m := s.worldJs.Load(); m != nil && m.gen == gen {
		return m.js
	}
	mWJBuilds.Inc()
	js := s.rebuildWorldJunctions()
	s.worldJs.Store(&wjMemo{gen: gen, js: js})
	return js
}

// RoadEventsIn implements EventLister. Sealed (warm-tier) events are
// decoded lazily: only the segment blocks overlapping (t1, t2] are
// reconstructed.
func (s *Store) RoadEventsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent {
	tr := s.loadTracker(road)
	if tr == nil {
		return dst
	}
	e := s.w.Star.Edge(road)
	dst = tr.appendSignedIn(toward == e.V, +1, t1, t2, dst)
	dst = tr.appendSignedIn(toward != e.V, -1, t1, t2, dst)
	return dst
}

// WorldEventsIn implements EventLister.
func (s *Store) WorldEventsIn(g planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent {
	wv := s.worldViewOf(g)
	dst = appendSigned(dst, wv.in[g], +1, t1, t2)
	dst = appendSigned(dst, wv.out[g], -1, t1, t2)
	return dst
}

// appendSigned appends the events of sorted ts in (t1, t2] to dst with
// the given delta. dst is presized once from the binary-search bounds,
// so a call appends with zero allocations whenever dst already has the
// capacity (the query path reuses its event buffer across calls).
func appendSigned(dst []SignedEvent, ts []float64, delta int, t1, t2 float64) []SignedEvent {
	lo := countLE(ts, t1)
	hi := countLE(ts, t2)
	if hi <= lo {
		return dst
	}
	dst = growSigned(dst, hi-lo)
	for _, t := range ts[lo:hi] {
		dst = append(dst, SignedEvent{T: t, Delta: delta})
	}
	return dst
}

// growSigned returns dst with room for need more elements, growing at
// most once — to the exact requirement or double the current capacity,
// whichever is larger, so repeated perimeter appends stay
// amortized-linear.
func growSigned(dst []SignedEvent, need int) []SignedEvent {
	if cap(dst)-len(dst) >= need {
		return dst
	}
	newCap := 2 * cap(dst)
	if newCap < len(dst)+need {
		newCap = len(dst) + need
	}
	nd := make([]SignedEvent, len(dst), newCap)
	copy(nd, dst)
	return nd
}

// LastRoadCrossing returns the most recent crossing timestamp recorded
// on road toward the given endpoint; ok=false when the direction has no
// events yet. Lock-free: it reads the atomically published tracking
// form, so it can be used to pre-validate per-form ordering of a batch
// against live store state (internal/partition's cross-store batch
// router does exactly that).
func (s *Store) LastRoadCrossing(road planar.EdgeID, toward planar.NodeID) (float64, bool) {
	if road < 0 || int(road) >= len(s.roads) {
		return 0, false
	}
	tr := s.loadTracker(road)
	if tr == nil {
		return 0, false
	}
	return tr.last(toward == s.w.Star.Edge(road).V)
}

// LastWorldEvent returns the most recent world-entry (entering=true) or
// world-exit timestamp at gateway g; ok=false when none. Lock-free, like
// LastRoadCrossing.
func (s *Store) LastWorldEvent(g planar.NodeID, entering bool) (float64, bool) {
	wv := s.worldViewOf(g)
	ts := wv.out[g]
	if entering {
		ts = wv.in[g]
	}
	if len(ts) == 0 {
		return 0, false
	}
	return ts[len(ts)-1], true
}

// GatewayGeneration returns the gateway-set generation counter: it
// advances whenever an event arrives at a previously unseen gateway.
// Composite stores key their merged WorldJunctions memo on it.
func (s *Store) GatewayGeneration() uint64 { return s.gatewayGen.Load() }

// RoadTracker returns a snapshot of the tracker of one road for storage
// accounting and for training learned models.
//
// The snapshot is the atomically published tracking form: both
// directions are captured together, and concurrent ingestion republishes
// a fresh form instead of mutating this one (stored timestamps are
// append-only), so reading the snapshot without locking is race-free.
// Callers must treat it as read-only (in particular, must not call
// Record on it) and see events published up to the call, not later ones.
func (s *Store) RoadTracker(road planar.EdgeID) Tracker {
	if tr := s.loadTracker(road); tr != nil {
		return *tr
	}
	return Tracker{}
}

// WorldEvents returns the gateway entry/exit timestamp sequences as
// fresh copies owned by the caller: they never alias store internals,
// so mutation cannot corrupt the store and later ingestion is never
// observable through them.
func (s *Store) WorldEvents(g planar.NodeID) (in, out []float64) {
	wv := s.worldViewOf(g)
	return copyTimes(wv.in[g]), copyTimes(wv.out[g])
}

// StorageStats summarizes per-edge storage of the exact store.
type StorageStats struct {
	// TimestampsPerRoad[i] is the number of stored timestamps of road i.
	TimestampsPerRoad []int
	// TotalTimestamps counts all stored road timestamps.
	TotalTimestamps int
	// Bytes is the exact-store footprint assuming 8-byte timestamps.
	Bytes int
}

// Storage reports the storage footprint of the exact store (road
// trackers only; world edges are identical across all compared systems
// and excluded, matching the paper's per-edge CDF in Fig. 11e).
func (s *Store) Storage() StorageStats {
	st := StorageStats{TimestampsPerRoad: make([]int, len(s.roads))}
	for i := range s.roads {
		if tr := s.roads[i].Load(); tr != nil {
			n := tr.Len()
			st.TimestampsPerRoad[i] = n
			st.TotalTimestamps += n
		}
	}
	st.Bytes = st.TotalTimestamps * 8
	return st
}
