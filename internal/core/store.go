package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/planar"
	"repro/internal/roadnet"
)

// Tracker is the pair of tracking forms (γ⁺, γ⁻) of one sensing edge:
// crossing timestamps per direction over the dual road, kept in
// non-decreasing order. The zero value is an empty tracker ready to use.
type Tracker struct {
	// fwd holds crossings in the road's U→V direction, rev in V→U.
	fwd, rev []float64
}

// Record appends a crossing at time t in the given direction. Timestamps
// must be appended in non-decreasing order per direction; Store enforces
// global ordering for all trackers.
func (tr *Tracker) Record(forward bool, t float64) {
	if forward {
		tr.fwd = append(tr.fwd, t)
	} else {
		tr.rev = append(tr.rev, t)
	}
}

// Count returns the number of crossings in the given direction up to and
// including t — the paper's C(γ, t).
func (tr *Tracker) Count(forward bool, t float64) int {
	if forward {
		return countLE(tr.fwd, t)
	}
	return countLE(tr.rev, t)
}

// Events returns the raw timestamp sequence for one direction. Callers
// must not modify it.
func (tr *Tracker) Events(forward bool) []float64 {
	if forward {
		return tr.fwd
	}
	return tr.rev
}

// Len returns the total number of stored crossings.
func (tr *Tracker) Len() int { return len(tr.fwd) + len(tr.rev) }

// countLE returns the number of elements of sorted ts that are ≤ t.
func countLE(ts []float64, t float64) int {
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// countIn returns the number of elements of sorted ts in (t1, t2].
func countIn(ts []float64, t1, t2 float64) int {
	return countLE(ts, t2) - countLE(ts, t1)
}

// Store is the exact (non-learned) tracking-form store of a world: one
// Tracker per road plus world-edge event lists per gateway. It is the
// reference Counter and EventLister implementation, and additionally
// implements the IntervalCounter and BatchCounter fast paths: a whole
// perimeter integral runs under a single read-lock acquisition.
//
// Store is safe for concurrent use: ingestion takes the write lock,
// queries the read lock.
type Store struct {
	mu    sync.RWMutex
	w     *roadnet.World
	roads []Tracker
	// worldIn/worldOut[g] hold entry/exit timestamps at gateway g.
	worldIn, worldOut map[planar.NodeID][]float64
	clock             float64
	events            int
	// worldJs memoizes WorldJunctions (guarded by mu); nil means stale.
	// Ingesting the first event of a previously unseen gateway
	// invalidates it.
	worldJs []planar.NodeID
}

// NewStore returns an empty store over w.
func NewStore(w *roadnet.World) *Store {
	return &Store{
		w:        w,
		roads:    make([]Tracker, w.Star.NumEdges()),
		worldIn:  make(map[planar.NodeID][]float64),
		worldOut: make(map[planar.NodeID][]float64),
	}
}

// World returns the world the store tracks.
func (s *Store) World() *roadnet.World { return s.w }

// NumEvents returns the total number of ingested crossing events.
func (s *Store) NumEvents() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.events
}

// Clock returns the timestamp of the most recent event.
func (s *Store) Clock() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.clock
}

func (s *Store) advance(t float64) error {
	if t < s.clock {
		return fmt.Errorf("core: event at %v precedes store clock %v (events must be time ordered)", t, s.clock)
	}
	s.clock = t
	s.events++
	return nil
}

// RecordMove ingests a crossing of road from endpoint `from` toward the
// other endpoint at time t.
func (s *Store) RecordMove(road planar.EdgeID, from planar.NodeID, t float64) error {
	if road < 0 || int(road) >= len(s.roads) {
		return fmt.Errorf("core: road %d out of range", road)
	}
	e := s.w.Star.Edge(road)
	if from != e.U && from != e.V {
		return fmt.Errorf("core: node %d is not an endpoint of road %d", from, road)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.advance(t); err != nil {
		return err
	}
	s.roads[road].Record(from == e.U, t)
	return nil
}

// RecordEnter ingests a world-entry at gateway g at time t (an object
// appearing from ★v_ext).
func (s *Store) RecordEnter(g planar.NodeID, t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.advance(t); err != nil {
		return err
	}
	if len(s.worldIn[g]) == 0 && len(s.worldOut[g]) == 0 {
		s.worldJs = nil
	}
	s.worldIn[g] = append(s.worldIn[g], t)
	return nil
}

// RecordLeave ingests a world-exit at gateway g at time t.
func (s *Store) RecordLeave(g planar.NodeID, t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.advance(t); err != nil {
		return err
	}
	if len(s.worldIn[g]) == 0 && len(s.worldOut[g]) == 0 {
		s.worldJs = nil
	}
	s.worldOut[g] = append(s.worldOut[g], t)
	return nil
}

// RoadCrossings implements Counter.
func (s *Store) RoadCrossings(road planar.EdgeID, toward planar.NodeID, t float64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.w.Star.Edge(road)
	return float64(s.roads[road].Count(toward == e.V, t))
}

// WorldCrossings implements Counter.
func (s *Store) WorldCrossings(g planar.NodeID, entering bool, t float64) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if entering {
		return float64(countLE(s.worldIn[g], t))
	}
	return float64(countLE(s.worldOut[g], t))
}

// WorldJunctions implements Counter: the junctions with any world-edge
// events, in ascending order for determinism. The sorted set is
// memoized and invalidated only when a previously unseen gateway
// ingests its first event, so the steady-state cost is one read-locked
// slice load instead of rebuilding and sorting from the maps. Callers
// must not modify the returned slice.
func (s *Store) WorldJunctions() []planar.NodeID {
	mWJCalls.Inc()
	s.mu.RLock()
	if js := s.worldJs; js != nil {
		s.mu.RUnlock()
		return js
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.worldJs == nil {
		mWJBuilds.Inc()
		s.worldJs = s.rebuildWorldJunctions()
	}
	return s.worldJs
}

// rebuildWorldJunctions recomputes the sorted world-junction set.
// Callers must hold the write lock.
func (s *Store) rebuildWorldJunctions() []planar.NodeID {
	out := make([]planar.NodeID, 0, len(s.worldIn)+len(s.worldOut))
	seen := make(map[planar.NodeID]bool, len(s.worldIn)+len(s.worldOut))
	for g := range s.worldIn {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	for g := range s.worldOut {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoadEventsIn implements EventLister.
func (s *Store) RoadEventsIn(road planar.EdgeID, toward planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.w.Star.Edge(road)
	in := s.roads[road].Events(toward == e.V)
	out := s.roads[road].Events(toward != e.V)
	dst = appendSigned(dst, in, +1, t1, t2)
	dst = appendSigned(dst, out, -1, t1, t2)
	return dst
}

// WorldEventsIn implements EventLister.
func (s *Store) WorldEventsIn(g planar.NodeID, t1, t2 float64, dst []SignedEvent) []SignedEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst = appendSigned(dst, s.worldIn[g], +1, t1, t2)
	dst = appendSigned(dst, s.worldOut[g], -1, t1, t2)
	return dst
}

func appendSigned(dst []SignedEvent, ts []float64, delta int, t1, t2 float64) []SignedEvent {
	lo := countLE(ts, t1)
	hi := countLE(ts, t2)
	for _, t := range ts[lo:hi] {
		dst = append(dst, SignedEvent{T: t, Delta: delta})
	}
	return dst
}

// RoadTracker returns a snapshot of the tracker of one road for storage
// accounting and for training learned models.
//
// Aliasing contract: the snapshot is taken under the read lock and
// shares its timestamp arrays with the live tracker. This is race-free
// because ingestion only ever appends — stored timestamps are never
// mutated in place, and the snapshot's length was captured under the
// lock, so concurrent appends land beyond every index the snapshot can
// read. Callers must treat the snapshot as read-only (in particular,
// must not call Record on it) and see events ingested up to the call,
// not later ones.
func (s *Store) RoadTracker(road planar.EdgeID) Tracker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.roads[road]
}

// WorldEvents returns the gateway entry/exit timestamp sequences. Callers
// must not mutate them.
func (s *Store) WorldEvents(g planar.NodeID) (in, out []float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.worldIn[g], s.worldOut[g]
}

// StorageStats summarizes per-edge storage of the exact store.
type StorageStats struct {
	// TimestampsPerRoad[i] is the number of stored timestamps of road i.
	TimestampsPerRoad []int
	// TotalTimestamps counts all stored road timestamps.
	TotalTimestamps int
	// Bytes is the exact-store footprint assuming 8-byte timestamps.
	Bytes int
}

// Storage reports the storage footprint of the exact store (road
// trackers only; world edges are identical across all compared systems
// and excluded, matching the paper's per-edge CDF in Fig. 11e).
func (s *Store) Storage() StorageStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := StorageStats{TimestampsPerRoad: make([]int, len(s.roads))}
	for i := range s.roads {
		n := s.roads[i].Len()
		st.TimestampsPerRoad[i] = n
		st.TotalTimestamps += n
	}
	st.Bytes = st.TotalTimestamps * 8
	return st
}
