package core

import (
	"math"
	"math/rand"
	"testing"
)

// Wire-format tests of SealedHistory (DESIGN.md §12): encode → decode
// round trips across block-encoded and raw segments, and decoder
// robustness against truncation and bit flips (errors, never panics).

// wireTestHistory builds a history of several segments, mixing
// delta-encoded and raw-fallback segments.
func wireTestHistory(rng *rand.Rand) *history {
	var h *history
	base := 0.0
	for s := 0; s < 4; s++ {
		n := 50 + rng.Intn(300)
		ts := make([]float64, n)
		if s == 2 {
			// Off-grid: forces the raw fallback segment kind.
			t := base
			for i := range ts {
				t += rng.Float64()
				ts[i] = t
			}
		} else {
			tv := int64(base) + 1
			for i := range ts {
				tv += int64(rng.Intn(20))
				ts[i] = float64(tv)
			}
		}
		h = h.extend(sealSegment(ts, 1.0, h.hlen()))
		base = ts[n-1] + 1
	}
	return h
}

func TestHistoryWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	h := wireTestHistory(rng)
	sh := &SealedHistory{h: h}

	wire := sh.AppendWire(nil)
	if len(wire) != sh.WireSize() {
		t.Fatalf("AppendWire produced %d bytes, WireSize says %d", len(wire), sh.WireSize())
	}
	// Decode must also work mid-buffer and report consumed bytes.
	padded := append([]byte{0xAA, 0xBB}, append(wire, 0xCC)...)
	got, consumed, err := DecodeSealedHistory(padded[2:])
	if err != nil {
		t.Fatalf("DecodeSealedHistory: %v", err)
	}
	if consumed != len(wire) {
		t.Fatalf("consumed %d bytes, want %d", consumed, len(wire))
	}
	if got.NumEvents() != sh.NumEvents() || got.NumSegments() != sh.NumSegments() {
		t.Fatalf("decoded %d events / %d segments, want %d / %d",
			got.NumEvents(), got.NumSegments(), sh.NumEvents(), sh.NumSegments())
	}
	a, b := h.appendTimes(nil), got.h.appendTimes(nil)
	if len(a) != len(b) {
		t.Fatalf("decoded history holds %d events, want %d", len(b), len(a))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("event %d decodes to %v, want %v", i, b[i], a[i])
		}
	}
	if _, err := got.h.validate(); err != nil {
		t.Fatalf("decoded history fails validation: %v", err)
	}
}

// TestHistoryWireTruncation feeds every strict prefix of the wire image
// to the decoder: each must error (or report full consumption), never
// panic or over-read.
func TestHistoryWireTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	sh := &SealedHistory{h: wireTestHistory(rng)}
	wire := sh.AppendWire(nil)
	for cut := 0; cut < len(wire); cut++ {
		if _, _, err := DecodeSealedHistory(wire[:cut]); err == nil {
			t.Fatalf("decoder accepted a %d/%d-byte prefix", cut, len(wire))
		}
	}
}

// TestHistoryWireBitFlips flips bytes at random offsets: the decoder
// must never panic; successful decodes must still pass structural
// validation or be rejected by it (the checkpoint CRC catches the
// rest).
func TestHistoryWireBitFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	sh := &SealedHistory{h: wireTestHistory(rng)}
	wire := sh.AppendWire(nil)
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), wire...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		got, _, err := DecodeSealedHistory(mut)
		if err != nil {
			continue
		}
		// A flip that still decodes must yield a structurally sane
		// history or be caught by validate — silent corruption of the
		// invariants countLE depends on is not acceptable.
		if verr := func() (verr error) {
			_, verr = got.h.validate()
			return
		}(); verr != nil {
			continue
		}
	}
}
