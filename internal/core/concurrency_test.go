package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

// TestStoreConcurrentReadersOneWriter exercises the documented
// concurrency contract: one ingesting goroutine, many querying
// goroutines, under the race detector (go test -race).
func TestStoreConcurrentReadersOneWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 8, NY: 8, Spacing: 50}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	gw := w.Gateways[0]
	region, err := core.NewRegion(w, w.JunctionsIn(w.Bounds()))
	if err != nil {
		t.Fatal(err)
	}

	const events = 3000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: hammer counts while ingestion runs.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := rr.Float64() * float64(events)
				if got := core.SnapshotCount(st, region, ts); got < 0 {
					t.Errorf("negative world occupancy %v", got)
					return
				}
				_ = core.TransientCount(st, region, ts/2, ts)
			}
		}(int64(r))
	}
	// Writer: one object random-walking, time strictly increasing.
	if err := st.RecordEnter(gw, 0); err != nil {
		t.Fatal(err)
	}
	cur := gw
	for i := 1; i <= events; i++ {
		inc := w.Star.Incident(cur)
		e := inc[rng.Intn(len(inc))]
		if err := st.RecordMove(e, cur, float64(i)); err != nil {
			t.Fatal(err)
		}
		cur = w.Star.Edge(e).Other(cur)
	}
	close(stop)
	wg.Wait()

	// Occupancy of the whole world must be exactly 1 at the end.
	if got := core.SnapshotCount(st, region, float64(events)+1); got != 1 {
		t.Errorf("final occupancy = %v, want 1", got)
	}
	if st.NumEvents() != events+1 {
		t.Errorf("events = %d", st.NumEvents())
	}
}

// TestRoadTrackerConcurrentWithIngest exercises the RoadTracker
// aliasing contract under the race detector: tracker snapshots are read
// (counts, raw events) while a writer keeps appending to the same
// trackers, via both the per-event and the batch ingestion paths.
func TestRoadTrackerConcurrentWithIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 6, NY: 6, Spacing: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	gw := w.Gateways[0]
	if err := st.RecordEnter(gw, 0); err != nil {
		t.Fatal(err)
	}

	const events = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				road := planar.EdgeID(rr.Intn(w.Star.NumEdges()))
				trk := st.RoadTracker(road)
				n := trk.Count(true, float64(events)) + trk.Count(false, float64(events))
				if n < 0 || n != trk.Len() {
					t.Errorf("tracker snapshot inconsistent: counts %d vs len %d", n, trk.Len())
					return
				}
				for _, ts := range trk.Events(rr.Intn(2) == 0) {
					if ts < 0 {
						t.Error("negative timestamp in snapshot")
						return
					}
				}
			}
		}(int64(r))
	}
	// Writer: alternate single-event and batch ingestion.
	cur := gw
	batch := make([]core.Event, 0, 16)
	for i := 1; i <= events; i++ {
		inc := w.Star.Incident(cur)
		e := inc[rng.Intn(len(inc))]
		if i%3 == 0 {
			// Flush pending batch first to keep global time ordering.
			if err := st.RecordBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
			if err := st.RecordMove(e, cur, float64(i)); err != nil {
				t.Fatal(err)
			}
		} else {
			batch = append(batch, core.MoveEvent(e, cur, float64(i)))
			if len(batch) == cap(batch) {
				if err := st.RecordBatch(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
		cur = w.Star.Edge(e).Other(cur)
	}
	if err := st.RecordBatch(batch); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if st.NumEvents() != events+1 {
		t.Errorf("events = %d, want %d", st.NumEvents(), events+1)
	}
}

// TestStoreRejectsOutOfOrderAcrossKinds verifies global time ordering
// across event kinds, not just per edge.
func TestStoreRejectsOutOfOrderAcrossKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 4, NY: 4, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	gw := w.Gateways[0]
	if err := st.RecordEnter(gw, 100); err != nil {
		t.Fatal(err)
	}
	var road planar.EdgeID
	for _, e := range w.Star.Incident(gw) {
		road = e
		break
	}
	if err := st.RecordMove(road, gw, 99); err == nil {
		t.Error("move before the store clock accepted")
	}
	if err := st.RecordLeave(gw, 50); err == nil {
		t.Error("leave before the store clock accepted")
	}
}
