package core

import (
	"math"
	"math/rand"
	"testing"
)

// Unit tests of the immutable warm segment (DESIGN.md §12): seal →
// decode round trips, tick-domain countLE against the hot-path
// reference, the raw lossless fallback, and corruption detection.

// segTestTimes builds a sorted tick-grid timestamp sequence of length n
// whose deltas exercise the requested encoding: small deltas take the
// bit-packed path, an occasional huge delta forces varint blocks, and
// zero deltas produce duplicate timestamps.
func segTestTimes(rng *rand.Rand, n int, tick float64, wide bool) []float64 {
	ts := make([]float64, n)
	tv := int64(rng.Intn(100))
	for i := range ts {
		ts[i] = float64(tv) * tick
		switch {
		case wide && rng.Intn(40) == 0:
			tv += int64(rng.Uint64() % (1 << 40)) // > segMaxPackWidth bits
		case rng.Intn(10) == 0:
			// duplicate timestamp
		default:
			tv += int64(1 + rng.Intn(30))
		}
	}
	return ts
}

func TestSegmentSealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 127, 128, 129, 255, 256, 1000} {
		for _, wide := range []bool{false, true} {
			ts := segTestTimes(rng, n, 0.5, wide)
			g := sealSegment(ts, 0.5, 7)
			if g.raw != nil {
				t.Fatalf("n=%d wide=%v: unexpected raw fallback for tick-grid input", n, wide)
			}
			if g.startIdx != 7 || g.n != n {
				t.Fatalf("n=%d: startIdx/n = %d/%d, want 7/%d", n, g.startIdx, g.n, n)
			}
			got := g.appendTimes(nil)
			if len(got) != n {
				t.Fatalf("n=%d wide=%v: decoded %d events", n, wide, len(got))
			}
			for i := range ts {
				if math.Float64bits(got[i]) != math.Float64bits(ts[i]) {
					t.Fatalf("n=%d wide=%v: event %d decodes to %v, want %v", n, wide, i, got[i], ts[i])
				}
			}
			if _, err := g.validate(math.Inf(-1)); err != nil {
				t.Fatalf("n=%d wide=%v: validate: %v", n, wide, err)
			}
			if g.memBytes() <= 0 {
				t.Fatalf("memBytes = %d", g.memBytes())
			}
		}
	}
}

// TestSegmentCountLEMatchesReference probes countLE at and around every
// event plus the extremes, comparing against the hot-path binary search
// on the original slice.
func TestSegmentCountLEMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 128, 513} {
		for _, wide := range []bool{false, true} {
			ts := segTestTimes(rng, n, 0.25, wide)
			g := sealSegment(ts, 0.25, 0)
			probes := []float64{math.Inf(-1), ts[0] - 1, ts[0], ts[n-1], ts[n-1] + 1, math.Inf(1)}
			for _, x := range ts {
				probes = append(probes, x, x-0.125, x+0.125)
			}
			for _, p := range probes {
				if got, want := g.countLE(p), countLE(ts, p); got != want {
					t.Fatalf("n=%d wide=%v: countLE(%v) = %d, want %d", n, wide, p, got, want)
				}
			}
			if got, want := g.countLE(math.NaN()), countLE(ts, math.NaN()); got != want {
				t.Fatalf("countLE(NaN) = %d, want %d (hot-path parity)", got, want)
			}
		}
	}
}

func TestSegmentAppendRangeMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ts := segTestTimes(rng, 700, 1.0, false)
	g := sealSegment(ts, 1.0, 0)
	for _, r := range [][2]int{{0, 700}, {0, 1}, {699, 700}, {100, 400}, {127, 129}, {128, 256}, {300, 300}, {-5, 9999}} {
		got := g.appendRange(r[0], r[1], -1, nil)
		lo, hi := r[0], r[1]
		if lo < 0 {
			lo = 0
		}
		if hi > len(ts) {
			hi = len(ts)
		}
		if hi < lo {
			hi = lo
		}
		want := ts[lo:hi]
		if len(got) != len(want) {
			t.Fatalf("appendRange(%d,%d): %d events, want %d", r[0], r[1], len(got), len(want))
		}
		for i := range want {
			if got[i].T != want[i] || got[i].Delta != -1 {
				t.Fatalf("appendRange(%d,%d): event %d = %+v, want T=%v Delta=-1", r[0], r[1], i, got[i], want[i])
			}
		}
	}
}

// TestSegmentRawFallback seals off-grid timestamps: the segment must
// keep them verbatim and answer identically, never silently quantize.
func TestSegmentRawFallback(t *testing.T) {
	ts := []float64{1.0 / 3, 2.0 / 3, 1.1, 2.5000001, 7.77}
	g := sealSegment(ts, 1.0, 0)
	if g.raw == nil {
		t.Fatalf("off-grid input did not fall back to raw storage")
	}
	got := g.appendTimes(nil)
	for i := range ts {
		if math.Float64bits(got[i]) != math.Float64bits(ts[i]) {
			t.Fatalf("raw segment event %d = %v, want %v", i, got[i], ts[i])
		}
	}
	for _, p := range []float64{0, 1.0 / 3, 0.5, 2.5, 100} {
		if got, want := g.countLE(p), countLE(ts, p); got != want {
			t.Fatalf("raw countLE(%v) = %d, want %d", p, got, want)
		}
	}
	if _, err := g.validate(math.Inf(-1)); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestSegmentValidateDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ts := segTestTimes(rng, 300, 1.0, false)

	g := sealSegment(ts, 1.0, 0)
	g.data = g.data[:len(g.data)/2]
	if _, err := g.validate(math.Inf(-1)); err == nil {
		t.Fatalf("validate accepted a truncated payload")
	}

	g = sealSegment(ts, 1.0, 0)
	g.blocks = g.blocks[:1]
	if _, err := g.validate(math.Inf(-1)); err == nil {
		t.Fatalf("validate accepted a truncated skip index")
	}

	// The skip entry is the block's source of truth, so corruption is
	// detectable exactly when it breaks cross-block monotonicity.
	g = sealSegment(ts, 1.0, 0)
	g.blocks[1].startTick -= 100000
	if _, err := g.validate(math.Inf(-1)); err == nil {
		t.Fatalf("validate accepted a skip entry breaking monotonicity")
	}

	g = sealSegment(ts, 1.0, 0)
	g.n++
	if _, err := g.validate(math.Inf(-1)); err == nil {
		t.Fatalf("validate accepted a wrong event count")
	}

	// A segment starting before its predecessor's tail must be rejected.
	g = sealSegment(ts, 1.0, 0)
	if _, err := g.validate(ts[0] + 1); err == nil {
		t.Fatalf("validate accepted a segment overlapping its predecessor")
	}
}
