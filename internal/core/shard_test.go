package core_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mobility"
	"repro/internal/planar"
	"repro/internal/roadnet"
)

// shardWorld builds a small grid world plus a generated workload for the
// sharded-store tests.
func shardWorld(t testing.TB, seed int64) (*roadnet.World, *mobility.Workload) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 8, NY: 8, Spacing: 50, Jitter: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := mobility.Generate(w, mobility.Opts{
		Objects: 60, Horizon: 8000, TripsPerObject: 4,
		MeanSpeed: 10, MeanPause: 200, LeaveProb: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return w, wl
}

// toCoreEvents converts workload ground truth to store events.
func toCoreEvents(t testing.TB, wl *mobility.Workload) []core.Event {
	t.Helper()
	out := make([]core.Event, 0, len(wl.Events))
	for _, ev := range wl.Events {
		switch ev.Kind {
		case mobility.Enter:
			out = append(out, core.EnterEvent(ev.At, ev.T))
		case mobility.Leave:
			out = append(out, core.LeaveEvent(ev.At, ev.T))
		case mobility.Move:
			out = append(out, core.MoveEvent(ev.Road, ev.From, ev.T))
		default:
			t.Fatalf("unknown workload event kind %d", ev.Kind)
		}
	}
	return out
}

// eventOwner partitions events by sensing edge: every road's (and every
// gateway's) events always land in the same partition, so each
// partition is a per-edge-monotone stream — the in-network model.
func eventOwner(ev core.Event, workers int) int {
	if ev.Kind == core.EventMove {
		return int(ev.Road) % workers
	}
	return int(ev.Gateway) % workers
}

// TestConcurrentShardedWritersBitIdentical is the sharded-store
// correctness anchor: W concurrent writers ingesting disjoint edge
// partitions under OrderPerEdge must leave the store bit-identical —
// every tracking form, every world-event list, the world-junction set,
// the clock, and the event count — to a single writer feeding the same
// globally ordered stream under OrderGlobal.
func TestConcurrentShardedWritersBitIdentical(t *testing.T) {
	w, wl := shardWorld(t, 7)
	events := toCoreEvents(t, wl)

	ref := core.NewStore(w)
	if err := ref.RecordBatch(events); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	parts := make([][]core.Event, workers)
	for _, ev := range events {
		o := eventOwner(ev, workers)
		parts[o] = append(parts[o], ev)
	}
	st := core.NewStore(w)
	st.SetOrdering(core.OrderPerEdge)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(part []core.Event) {
			defer wg.Done()
			const chunk = 97 // deliberately odd so batches straddle shards unevenly
			for lo := 0; lo < len(part); lo += chunk {
				hi := lo + chunk
				if hi > len(part) {
					hi = len(part)
				}
				if err := st.RecordBatch(part[lo:hi]); err != nil {
					t.Errorf("concurrent partition ingest: %v", err)
					return
				}
			}
		}(parts[wk])
	}
	wg.Wait()

	if st.NumEvents() != ref.NumEvents() {
		t.Fatalf("NumEvents = %d, want %d", st.NumEvents(), ref.NumEvents())
	}
	if st.Clock() != ref.Clock() {
		t.Fatalf("Clock = %v, want %v", st.Clock(), ref.Clock())
	}
	for road := 0; road < w.Star.NumEdges(); road++ {
		got, want := st.RoadTracker(planar.EdgeID(road)), ref.RoadTracker(planar.EdgeID(road))
		for _, fwd := range []bool{true, false} {
			g, r := got.Events(fwd), want.Events(fwd)
			if len(g) != len(r) {
				t.Fatalf("road %d fwd=%v: %d events, want %d", road, fwd, len(g), len(r))
			}
			for i := range g {
				if g[i] != r[i] {
					t.Fatalf("road %d fwd=%v event %d: %v != %v", road, fwd, i, g[i], r[i])
				}
			}
		}
	}
	gj, rj := st.WorldJunctions(), ref.WorldJunctions()
	if !sort.SliceIsSorted(gj, func(i, j int) bool { return gj[i] < gj[j] }) {
		t.Error("WorldJunctions not sorted")
	}
	if len(gj) != len(rj) {
		t.Fatalf("WorldJunctions: %d, want %d", len(gj), len(rj))
	}
	for i := range gj {
		if gj[i] != rj[i] {
			t.Fatalf("WorldJunctions[%d] = %d, want %d", i, gj[i], rj[i])
		}
		in1, out1 := st.WorldEvents(gj[i])
		in2, out2 := ref.WorldEvents(gj[i])
		if len(in1) != len(in2) || len(out1) != len(out2) {
			t.Fatalf("world events at %d differ in length", gj[i])
		}
		for k := range in1 {
			if in1[k] != in2[k] {
				t.Fatalf("world entry %d at %d: %v != %v", k, gj[i], in1[k], in2[k])
			}
		}
		for k := range out1 {
			if out1[k] != out2[k] {
				t.Fatalf("world exit %d at %d: %v != %v", k, gj[i], out1[k], out2[k])
			}
		}
	}
}

// TestOrderPerEdgeValidation pins the OrderPerEdge contract: time may
// regress across different sensing edges, but never within one tracking
// form direction or one world-edge direction.
func TestOrderPerEdgeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 4, NY: 4, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := core.NewStore(w)
	st.SetOrdering(core.OrderPerEdge)
	if got := st.GetOrdering(); got != core.OrderPerEdge {
		t.Fatalf("GetOrdering = %v", got)
	}
	gw := w.Gateways[0]
	roadA := w.Star.Incident(gw)[0]
	fromA := gw
	var roadB planar.EdgeID
	for e := planar.EdgeID(0); int(e) < w.Star.NumEdges(); e++ {
		if e != roadA {
			roadB = e
			break
		}
	}
	fromB := w.Star.Edge(roadB).U

	if err := st.RecordMove(roadA, fromA, 100); err != nil {
		t.Fatal(err)
	}
	// Cross-edge regression: allowed (independent sensor clocks).
	if err := st.RecordMove(roadB, fromB, 5); err != nil {
		t.Errorf("cross-edge time regression rejected under OrderPerEdge: %v", err)
	}
	// Same-form regression: rejected.
	if err := st.RecordMove(roadA, fromA, 99); err == nil {
		t.Error("same-direction regression accepted")
	}
	// Opposite direction of the same road is an independent form.
	other := w.Star.Edge(roadA).Other(fromA)
	if err := st.RecordMove(roadA, other, 1); err != nil {
		t.Errorf("opposite-direction crossing rejected: %v", err)
	}
	// World edges: per-direction monotone per gateway.
	if err := st.RecordEnter(gw, 50); err != nil {
		t.Fatal(err)
	}
	if err := st.RecordEnter(gw, 49); err == nil {
		t.Error("world-entry regression accepted")
	}
	if err := st.RecordLeave(gw, 1); err != nil {
		t.Errorf("world-exit with earlier clock rejected (independent direction): %v", err)
	}
	// Batches: cross-edge disorder fine, same-form disorder rejected.
	if err := st.RecordBatch([]core.Event{
		core.MoveEvent(roadB, fromB, 200),
		core.MoveEvent(roadA, fromA, 150),
	}); err != nil {
		t.Errorf("cross-edge disorder in batch rejected: %v", err)
	}
	if err := st.RecordBatch([]core.Event{
		core.MoveEvent(roadA, fromA, 300),
		core.MoveEvent(roadA, fromA, 250),
	}); err == nil {
		t.Error("same-form disorder in batch accepted")
	}
}

// TestRecordBatchMultiShardAtomic extends the batch-atomicity contract
// to batches spanning many lock stripes: a per-edge order violation at
// the end of a wide batch must leave every stripe's published state —
// trackers, world views, clock, event count — untouched.
func TestRecordBatchMultiShardAtomic(t *testing.T) {
	w, wl := shardWorld(t, 11)
	events := toCoreEvents(t, wl)
	st := core.NewStore(w)
	st.SetOrdering(core.OrderPerEdge)
	if err := st.RecordBatch(events); err != nil {
		t.Fatal(err)
	}
	beforeEvents, beforeClock := st.NumEvents(), st.Clock()
	beforeStorage := st.Storage()

	// A wide batch touching > numShards distinct roads, ending with an
	// event that regresses one already-populated tracking form.
	var bad core.Event
	var badRoad planar.EdgeID
	for road := 0; road < w.Star.NumEdges(); road++ {
		tr := st.RoadTracker(planar.EdgeID(road))
		if ts := tr.Events(true); len(ts) > 0 && ts[0] > 1 {
			badRoad = planar.EdgeID(road)
			bad = core.MoveEvent(badRoad, w.Star.Edge(badRoad).U, ts[0]-1)
			break
		}
	}
	if bad.Kind != core.EventMove {
		t.Fatal("workload produced no populated forward tracking form")
	}
	batch := make([]core.Event, 0, w.Star.NumEdges()+1)
	for road := 0; road < w.Star.NumEdges(); road++ {
		batch = append(batch, core.MoveEvent(planar.EdgeID(road), w.Star.Edge(planar.EdgeID(road)).U, beforeClock+float64(road)))
	}
	batch = append(batch, bad)
	if err := st.RecordBatch(batch); err == nil {
		t.Fatal("batch with trailing per-edge violation accepted")
	}
	if st.NumEvents() != beforeEvents {
		t.Errorf("NumEvents changed: %d -> %d", beforeEvents, st.NumEvents())
	}
	if st.Clock() != beforeClock {
		t.Errorf("Clock changed: %v -> %v", beforeClock, st.Clock())
	}
	afterStorage := st.Storage()
	if afterStorage.TotalTimestamps != beforeStorage.TotalTimestamps {
		t.Errorf("timestamps changed: %d -> %d", beforeStorage.TotalTimestamps, afterStorage.TotalTimestamps)
	}
	for i, n := range beforeStorage.TimestampsPerRoad {
		if afterStorage.TimestampsPerRoad[i] != n {
			t.Errorf("road %d storage changed: %d -> %d", i, n, afterStorage.TimestampsPerRoad[i])
		}
	}
}

// TestWorldJunctionsInvalidatedByConcurrentGateway checks the
// generation-stamped WorldJunctions memo: a gateway first seen while
// other writers run must appear once ingestion quiesces.
func TestWorldJunctionsInvalidatedByConcurrentGateway(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := roadnet.GridCity(roadnet.GridOpts{NX: 6, NY: 6, Spacing: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Gateways) < 2 {
		t.Skip("need two gateways")
	}
	st := core.NewStore(w)
	st.SetOrdering(core.OrderPerEdge)
	if err := st.RecordEnter(w.Gateways[0], 1); err != nil {
		t.Fatal(err)
	}
	if n := len(st.WorldJunctions()); n != 1 {
		t.Fatalf("memoized world junctions = %d, want 1", n)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				js := st.WorldJunctions()
				if len(js) < 1 || len(js) > 2 {
					t.Errorf("world junctions = %d, want 1 or 2", len(js))
					return
				}
			}
		}()
	}
	if err := st.RecordEnter(w.Gateways[1], 2); err != nil {
		t.Fatal(err)
	}
	close(stop)
	readers.Wait()
	js := st.WorldJunctions()
	if len(js) != 2 {
		t.Fatalf("world junctions after new gateway = %d, want 2", len(js))
	}
}
