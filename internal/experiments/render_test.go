package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	fig := Figure{
		ID: "t1", Title: "Test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "alpha", Points: []Point{
				{X: 1, Stat: Stat{Median: 0.5, P25: 0.4, P75: 0.6, N: 3}},
				{X: 2, Stat: Stat{Median: 0.25, P25: 0.25, P75: 0.25, N: 3}},
			}},
			{Name: "beta", Points: []Point{
				{X: 1, Stat: Stat{Median: 123.456, P25: 100, P75: 150, N: 3}},
			}},
		},
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"t1", "alpha", "beta", "0.500 [0.400,0.600]", "123.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// Degenerate IQR collapses to the bare median.
	if !strings.Contains(out, "0.250\n") && !strings.Contains(out, "0.250 ") {
		t.Errorf("collapsed stat missing:\n%s", out)
	}
	// Missing x in a series renders a dash.
	if !strings.Contains(out, "-") {
		t.Error("missing-cell dash absent")
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, Figure{ID: "e", Title: "Empty"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no series") {
		t.Error("empty figure marker missing")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0.0314:  "0.031",
		-2.5:    "-2.50",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFmtStatNaN(t *testing.T) {
	if got := fmtStat(Stat{Median: math.NaN()}); got != "-" {
		t.Errorf("NaN stat = %q", got)
	}
}
