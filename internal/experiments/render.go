package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Render writes a figure as an aligned text table: one row per x value,
// one column per series (median with the IQR in brackets).
func Render(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "\n== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "x = %s, y = %s (median [p25,p75])\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	if len(f.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no series)")
		return err
	}
	// Collect the x grid from the longest series.
	var xs []float64
	for _, s := range f.Series {
		if len(s.Points) > len(xs) {
			xs = xs[:0]
			for _, p := range s.Points {
				xs = append(xs, p.X)
			}
		}
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, "x")
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmtStat(p.Stat)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

func fmtStat(s Stat) string {
	if math.IsNaN(s.Median) {
		return "-"
	}
	if s.P25 == s.P75 || math.IsNaN(s.P25) {
		return trimFloat(s.Median)
	}
	return fmt.Sprintf("%s [%s,%s]", trimFloat(s.Median), trimFloat(s.P25), trimFloat(s.P75))
}

func trimFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e7:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		b.Reset()
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1))); err != nil {
				return err
			}
		}
	}
	return nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
