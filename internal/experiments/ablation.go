package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/learned"
	"repro/internal/planar"
	"repro/internal/query"
	"repro/internal/submodular"
)

// AblationGreedy compares the lazy (CELF) and naive greedy submodular
// solvers on the query-adaptive selection problem: achieved utility must
// match while the lazy solver runs faster. The x axis is the number of
// historical queries.
func (e *Env) AblationGreedy() (Figure, error) {
	fig := Figure{
		ID: "ablation-greedy", Title: "Lazy vs naive greedy selection time",
		XLabel: "historical queries", YLabel: "selection time (ms)",
	}
	lazySeries := Series{Name: "lazy-celf"}
	naiveSeries := Series{Name: "naive"}
	for _, nq := range []int{10, 25, 50, 100} {
		rng := e.repRNG(901, int64(nq))
		var hist []*core.Region
		for i := 0; i < nq; i++ {
			rect, _, _ := e.RandomQuery(FixedQueryPct*2, rng)
			r, err := e.RegionOf(rect)
			if err != nil {
				return fig, err
			}
			if !r.Empty() {
				hist = append(hist, r)
			}
		}
		atoms := submodular.Partition(e.W, hist)
		elems := make([]submodular.Element, len(atoms))
		for i, a := range atoms {
			cost := float64(len(a.BoundaryRoads))
			if cost == 0 {
				cost = 1
			}
			elems[i] = submodular.Element{ID: a.ID, Cost: cost}
		}
		budget := float64(e.SensorBudget(25.6))

		var lazyTimes, naiveTimes []float64
		for rep := 0; rep < e.Cfg.Reps; rep++ {
			start := time.Now()
			if _, err := submodular.LazyGreedy(elems, budget, newCoverObj(atoms, hist)); err != nil {
				return fig, err
			}
			lazyTimes = append(lazyTimes, float64(time.Since(start).Microseconds())/1000)
			start = time.Now()
			if _, err := submodular.NaiveGreedy(elems, budget, newCoverObj(atoms, hist)); err != nil {
				return fig, err
			}
			naiveTimes = append(naiveTimes, float64(time.Since(start).Microseconds())/1000)
		}
		lazySeries.Points = append(lazySeries.Points, Point{X: float64(nq), Stat: NewStat(lazyTimes)})
		naiveSeries.Points = append(naiveSeries.Points, Point{X: float64(nq), Stat: NewStat(naiveTimes)})
	}
	fig.Series = []Series{lazySeries, naiveSeries}
	return fig, nil
}

// coverObj is the atom-utility objective rebuilt for each solver run
// (greedy mutates objective state).
type coverObj struct {
	atoms    []submodular.Atom
	qWeight  []float64
	selected map[int]bool
}

func newCoverObj(atoms []submodular.Atom, queries []*core.Region) *coverObj {
	o := &coverObj{atoms: atoms, qWeight: make([]float64, len(queries)), selected: map[int]bool{}}
	for qi, q := range queries {
		o.qWeight[qi] = float64(q.Size())
	}
	return o
}

func (o *coverObj) Gain(e submodular.Element) float64 {
	if o.selected[e.ID] {
		return 0
	}
	a := o.atoms[e.ID]
	g := 0.0
	for _, qi := range a.Queries {
		if o.qWeight[qi] > 0 {
			g += float64(len(a.Junctions)) / o.qWeight[qi]
		}
	}
	return g
}

func (o *coverObj) Select(e submodular.Element) { o.selected[e.ID] = true }

// AblationBaselineScaling compares the scaled (Horvitz–Thompson) and
// unscaled Euler-baseline estimators across graph sizes.
func (e *Env) AblationBaselineScaling() (Figure, error) {
	fig := Figure{
		ID: "ablation-baseline", Title: "Baseline estimator scaling",
		XLabel: "sampled faces (% of faces)", YLabel: "relative error",
	}
	for _, scaled := range []bool{true, false} {
		name := "unscaled"
		if scaled {
			name = "scaled-HT"
		}
		s := Series{Name: name}
		for xi, pct := range GraphSizes {
			faces := int(float64(e.W.Star.NumNodes()) * pct / 100)
			if faces < 1 {
				faces = 1
			}
			var errs []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				rng := e.repRNG(902, int64(xi), int64(rep), boolSalt(scaled))
				pool := e.NewQueryPool(e.Cfg.HistoricalQueries, FixedQueryPct*4,
					e.repRNG(903, int64(xi), int64(rep)))
				cell := e.baselineCell(faces, scaled, query.Snapshot, pool, rng)
				errs = append(errs, cell.err)
			}
			s.Points = append(s.Points, Point{X: pct, Stat: NewStat(errs)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func boolSalt(b bool) int64 {
	if b {
		return 1
	}
	return 2
}

// AblationRollingBuffer sweeps the rolling-buffer capacity of the live
// learned store: recent-window count error vs buffer size, plus storage.
func (e *Env) AblationRollingBuffer() (Figure, error) {
	fig := Figure{
		ID: "ablation-buffer", Title: "Rolling buffer capacity",
		XLabel: "buffer capacity (events)", YLabel: "mean |count error| in window",
	}
	// Use the busiest road's event sequence as the stress input.
	var busiest []float64
	for eid := 0; eid < e.W.Star.NumEdges(); eid++ {
		trk := e.Store.RoadTracker(planar.EdgeID(eid))
		if ts := trk.Events(true); len(ts) > len(busiest) {
			busiest = ts
		}
		if ts := trk.Events(false); len(ts) > len(busiest) {
			busiest = ts
		}
	}
	if len(busiest) < 16 {
		fig.Series = []Series{{Name: "pwl4"}}
		return fig, nil
	}
	s := Series{Name: "pwl4-err-frac"}
	stor := Series{Name: "peak-bytes/1000"}
	for _, capacity := range []int{16, 32, 64, 128, 256} {
		r, err := learned.NewRolling(learned.PiecewiseTrainer{Segments: 4}, capacity)
		if err != nil {
			return fig, err
		}
		peak := 0
		for _, t := range busiest {
			if err := r.Append(t); err != nil {
				return fig, err
			}
			if sz := r.SizeBytes(); sz > peak {
				peak = sz
			}
		}
		// Probe the resolvable window; normalize the error by the window
		// event count so capacities are comparable.
		win := r.WindowSize()
		if win > len(busiest) {
			win = len(busiest)
		}
		if win < 2 {
			continue
		}
		start := busiest[len(busiest)-win]
		end := busiest[len(busiest)-1]
		var sumErr, n float64
		for q := start; q <= end; q += (end - start) / 32 {
			got := r.CountAt(q)
			want := float64(countLE(busiest, q))
			d := got - want
			if d < 0 {
				d = -d
			}
			sumErr += d
			n++
			if end == start {
				break
			}
		}
		s.Points = append(s.Points, Point{X: float64(capacity),
			Stat: NewStat([]float64{sumErr / n / float64(win)})})
		stor.Points = append(stor.Points, Point{X: float64(capacity),
			Stat: NewStat([]float64{float64(peak) / 1000})})
	}
	fig.Series = []Series{s, stor}
	return fig, nil
}

func countLE(ts []float64, t float64) int {
	lo, hi := 0, len(ts)
	for lo < hi {
		mid := (lo + hi) / 2
		if ts[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
