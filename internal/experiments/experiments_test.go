package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/query"
)

// sharedEnv is built once for the whole test binary (environment
// construction feeds a full workload).
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestNewEnv(t *testing.T) {
	e := env(t)
	if e.Store.NumEvents() == 0 {
		t.Fatal("no events ingested")
	}
	if len(e.Candidates) == 0 {
		t.Fatal("no sensor candidates")
	}
	if e.SensorBudget(100) != len(e.Candidates) {
		t.Error("100% budget should be all candidates")
	}
	if e.SensorBudget(0.0001) < 3 {
		t.Error("budget floor violated")
	}
}

func TestRandomQueryShape(t *testing.T) {
	e := env(t)
	rng := e.repRNG(1)
	b := e.W.Bounds()
	for i := 0; i < 50; i++ {
		rect, t1, t2 := e.RandomQuery(1.08, rng)
		if rect.Empty() {
			t.Fatal("empty query rect")
		}
		if t2 <= t1 || t1 < 0 || t2 > e.WL.Horizon {
			t.Fatalf("bad window [%v,%v]", t1, t2)
		}
		got := rect.Area() / b.Area() * 100
		if got > 1.2*1.08+0.1 {
			t.Fatalf("query area %v%% exceeds requested 1.08%%", got)
		}
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(10, 8); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeError(10,8) = %v", got)
	}
	if got := RelativeError(0, 3); got != 3 {
		t.Errorf("zero-truth error = %v, want |0-3|/1", got)
	}
	if got := RelativeError(-4, -4); got != 0 {
		t.Errorf("exact negative = %v", got)
	}
}

func TestStatQuantiles(t *testing.T) {
	s := NewStat([]float64{1, 2, 3, 4, 5})
	if s.Median != 3 || s.P25 != 2 || s.P75 != 4 || s.N != 5 {
		t.Errorf("Stat = %+v", s)
	}
	if !math.IsNaN(NewStat(nil).Median) {
		t.Error("empty stat should be NaN")
	}
}

func TestSweepCellAndFig11a(t *testing.T) {
	e := env(t)
	fig, err := e.Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 7 { // 5 samplers + submodular + baseline
		t.Fatalf("series = %d, want 7", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(GraphSizes) {
			t.Fatalf("%s: %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if !math.IsNaN(p.Median) && (p.Median < 0 || p.Median > 1.5) {
				t.Errorf("%s@%v: error %v out of plausible range", s.Name, p.X, p.Median)
			}
		}
	}
	// The paper's shape: large sampled graphs beat tiny ones.
	for _, s := range fig.Series {
		first, last := s.Points[0].Median, s.Points[len(s.Points)-1].Median
		if !math.IsNaN(first) && !math.IsNaN(last) && last > first+0.2 {
			t.Errorf("%s: error grew with graph size (%.3f → %.3f)", s.Name, first, last)
		}
	}
	var buf bytes.Buffer
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig11a") || !strings.Contains(out, "uniform") {
		t.Error("render missing content")
	}
}

func TestFig11cShapes(t *testing.T) {
	e := env(t)
	fig, err := e.Fig11c()
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[string][]Point{}
	for _, s := range fig.Series {
		bySeries[s.Name] = s.Points
	}
	uns := bySeries["unsampled"]
	if len(uns) == 0 {
		t.Fatal("no unsampled series")
	}
	// Unsampled access grows with query size (paper: linear).
	if uns[len(uns)-1].Median <= uns[0].Median {
		t.Errorf("unsampled access did not grow: %v → %v",
			uns[0].Median, uns[len(uns)-1].Median)
	}
	// The 6.4% sampled graph accesses far fewer nodes at large sizes.
	smp := bySeries["sampled-6.4%"]
	if smp[len(smp)-1].Median >= uns[len(uns)-1].Median {
		t.Errorf("sampled access %v not below unsampled %v at the largest query",
			smp[len(smp)-1].Median, uns[len(uns)-1].Median)
	}
}

func TestFig11eCDF(t *testing.T) {
	e := env(t)
	fig, err := e.Fig11e()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) < 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) < 2 {
			t.Fatalf("%s: too few CDF points", s.Name)
		}
		// CDF is monotone in both axes.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].X < s.Points[i-1].X || s.Points[i].Median < s.Points[i-1].Median {
				t.Fatalf("%s: CDF not monotone", s.Name)
			}
		}
		if last := s.Points[len(s.Points)-1].Median; last != 1 {
			t.Errorf("%s: CDF ends at %v", s.Name, last)
		}
	}
}

func TestFig14Sweeps(t *testing.T) {
	e := env(t)
	a, err := e.Fig14a()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != 5 {
		t.Fatalf("fig14a series = %d", len(a.Series))
	}
	b, err := e.Fig14b()
	if err != nil {
		t.Fatal(err)
	}
	// More neighbours must access at least as many edges: compare k=2
	// against k=8 at the largest query size.
	edge := func(name string) float64 {
		for _, s := range b.Series {
			if s.Name == name {
				return s.Points[len(s.Points)-1].Median
			}
		}
		return math.NaN()
	}
	if e2, e8 := edge("knn-k2"), edge("knn-k8"); !math.IsNaN(e2) && !math.IsNaN(e8) && e8 < e2*0.5 {
		t.Errorf("k=8 accesses far fewer edges (%v) than k=2 (%v)", e8, e2)
	}
}

func TestFig14cdModelError(t *testing.T) {
	e := env(t)
	c, d, err := e.Fig14cd()
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []Figure{c, d} {
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if !math.IsNaN(p.Median) && p.Median > 2 {
					t.Errorf("%s/%s@%v: model error %v implausible",
						fig.ID, s.Name, p.X, p.Median)
				}
			}
		}
	}
}

func TestHeadline(t *testing.T) {
	e := env(t)
	h, err := e.RunHeadline()
	if err != nil {
		t.Fatal(err)
	}
	if h.RelError < 0 || h.RelError > 1 {
		t.Errorf("headline error = %v", h.RelError)
	}
	if h.NodeAccessReduction <= 0 {
		t.Errorf("node access reduction = %v, want positive", h.NodeAccessReduction)
	}
	if h.StorageReduction <= 0.5 {
		t.Errorf("storage reduction = %v, want large", h.StorageReduction)
	}
	if !strings.Contains(h.String(), "relErr") {
		t.Error("headline string")
	}
}

func TestAblations(t *testing.T) {
	e := env(t)
	g, err := e.AblationGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Series) != 2 {
		t.Fatalf("greedy ablation series = %d", len(g.Series))
	}
	bl, err := e.AblationBaselineScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Series) != 2 {
		t.Fatalf("baseline ablation series = %d", len(bl.Series))
	}
	rb, err := e.AblationRollingBuffer()
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Series) == 0 {
		t.Fatal("rolling ablation empty")
	}
}

func TestCostModel(t *testing.T) {
	e := env(t)
	rep, err := e.RunCostModel()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EllG <= 1 {
		t.Errorf("ℓ_G = %v implausible", rep.EllG)
	}
	// Small-world sanity: ℓ_G within a small factor of log₂N.
	if rep.EllG > 4*rep.LogN {
		t.Errorf("ℓ_G %v far above log₂N %v", rep.EllG, rep.LogN)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rep.Rows {
		// The prediction is an upper-bound-flavoured O(1) model: the
		// measured/predicted ratio must be bounded and positive.
		if r.Ratio <= 0 || r.Ratio > 3 {
			t.Errorf("m=%d k=%d area=%v: ratio %v outside (0,3]", r.M, r.K, r.AreaPct, r.Ratio)
		}
	}
	// Measured node count grows with query area for fixed (m, k).
	byMK := map[[2]int]map[float64]float64{}
	for _, r := range rep.Rows {
		k := [2]int{r.M, r.K}
		if byMK[k] == nil {
			byMK[k] = map[float64]float64{}
		}
		byMK[k][r.AreaPct] = r.MeasuredNodes
	}
	for k, areas := range byMK {
		if small, ok := areas[4.32]; ok {
			if big, ok := areas[17.28]; ok && big < small {
				t.Errorf("m=%d k=%d: nodes fell with area (%v → %v)", k[0], k[1], small, big)
			}
		}
	}
	fig := rep.Figure()
	if len(fig.Series) != 3 {
		t.Errorf("figure series = %d", len(fig.Series))
	}
}

func TestCountOnKinds(t *testing.T) {
	e := env(t)
	rng := e.repRNG(7)
	rect, t1, t2 := e.RandomQuery(10, rng)
	r, err := e.RegionOf(rect)
	if err != nil {
		t.Fatal(err)
	}
	if r.Empty() {
		t.Skip("empty probe region")
	}
	snap := e.countOn(r, query.Snapshot, t1, t2)
	static := e.countOn(r, query.Static, t1, t2)
	if static > snap {
		t.Errorf("static %v above snapshot-at-t1 %v", static, snap)
	}
}
