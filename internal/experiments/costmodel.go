package experiments

import (
	"math/rand"

	"repro/internal/planar"
	"repro/internal/sampled"
	"repro/internal/sampling"
)

// CostModelReport validates the paper's theoretical query-cost model
// (§4.9): the number of sampled-graph nodes involved in a query is
// predicted as
//
//	|Ñ_P| ≈ (A(Q_R)/A(T_R)) · m · k · ℓ_G
//
// with m sampled sensors, k neighbours per sensor (k-NN wiring), and ℓ_G
// the average shortest-path length of the sensing graph (expected to be
// sub-linear — the small-world factor).
type CostModelReport struct {
	// EllG is the measured average shortest-path hop length of G.
	EllG float64
	// LogN is log₂ of the sensing-graph node count, for the small-world
	// comparison ℓ_G = O(log N).
	LogN float64
	// Rows holds one measurement per (m, k, query-area) cell.
	Rows []CostModelRow
}

// CostModelRow is one validated cell of the cost model.
type CostModelRow struct {
	M         int
	K         int
	AreaPct   float64
	Predicted float64
	// MeasuredNodes is the mean number of G̃ nodes (sensors + relays) on
	// query perimeters.
	MeasuredNodes float64
	// Ratio is Measured/Predicted; the model is validated when the ratio
	// is O(1) and stable across the sweep.
	Ratio float64
}

// RunCostModel measures the §4.9 prediction on k-NN sampled graphs.
func (e *Env) RunCostModel() (*CostModelReport, error) {
	rep := &CostModelReport{
		EllG: planar.AvgShortestPathLength(e.W.Dual.G, 32),
		LogN: log2(float64(e.W.Dual.G.NumNodes())),
	}
	rng := e.repRNG(4909)
	for _, pct := range []float64{6.4, 12.8, 25.6} {
		m := e.SensorBudget(pct)
		for _, k := range []int{2, 3, 5} {
			sel, err := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, m, rng)
			if err != nil {
				return nil, err
			}
			sg, err := sampled.Build(e.W, sel, sampled.Options{Connect: sampled.KNN, K: k})
			if err != nil {
				return nil, err
			}
			for _, areaPct := range []float64{4.32, 17.28} {
				measured, n := e.measureNodesInRegion(sg, areaPct, rng)
				if n == 0 {
					continue
				}
				pred := areaPct / 100 * float64(m) * float64(k) * rep.EllG
				row := CostModelRow{
					M: m, K: k, AreaPct: areaPct,
					Predicted:     pred,
					MeasuredNodes: measured,
				}
				if pred > 0 {
					row.Ratio = measured / pred
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// measureNodesInRegion returns the mean number of G̃ nodes (selected
// sensors plus path relays) whose location falls inside random query
// rectangles — the |Ñ_P| quantity of §4.9's prediction.
func (e *Env) measureNodesInRegion(sg *sampled.Graph, areaPct float64, rng *rand.Rand) (float64, int) {
	var sum float64
	n := 0
	for q := 0; q < e.Cfg.Reps*e.Cfg.QueriesPerRep; q++ {
		rect, _, _ := e.RandomQuery(areaPct, rng)
		inside := 0
		for node := range sg.DualNodes {
			if rect.Contains(sg.W.Dual.G.Point(node)) {
				inside++
			}
		}
		sum += float64(inside)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Figure renders the report in the harness's table format.
func (rep *CostModelReport) Figure() Figure {
	fig := Figure{
		ID:     "cost-model",
		Title:  "§4.9 query-cost model validation",
		XLabel: "row", YLabel: "nodes on perimeter",
	}
	pred := Series{Name: "predicted"}
	meas := Series{Name: "measured"}
	ratio := Series{Name: "ratio"}
	for i, r := range rep.Rows {
		x := float64(i + 1)
		pred.Points = append(pred.Points, Point{X: x, Stat: Stat{Median: r.Predicted, P25: r.Predicted, P75: r.Predicted, N: 1}})
		meas.Points = append(meas.Points, Point{X: x, Stat: Stat{Median: r.MeasuredNodes, P25: r.MeasuredNodes, P75: r.MeasuredNodes, N: 1}})
		ratio.Points = append(ratio.Points, Point{X: x, Stat: Stat{Median: r.Ratio, P25: r.Ratio, P75: r.Ratio, N: 1}})
	}
	fig.Series = []Series{pred, meas, ratio}
	return fig
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
