package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/euler"
	"repro/internal/learned"
	"repro/internal/query"
	"repro/internal/sampled"
	"repro/internal/sampling"
)

// countOn evaluates the requested count kind over a region with the exact
// store.
func (e *Env) countOn(r *core.Region, kind query.Kind, t1, t2 float64) float64 {
	switch kind {
	case query.Snapshot:
		return core.SnapshotCount(e.Store, r, t1)
	case query.Static:
		return core.StaticCount(e.Store, e.Store, r, t1, t2)
	default:
		return core.TransientCount(e.Store, r, t1, t2)
	}
}

// repRNG derives a deterministic RNG for one (x, method, rep) cell.
func (e *Env) repRNG(salt ...int64) *rand.Rand {
	h := e.Cfg.Seed
	for _, s := range salt {
		h = h*1000003 + s + 12289
	}
	return rand.New(rand.NewSource(h))
}

// sweepCell measures one sampled graph against QueriesPerRep random
// queries: mean relative error (misses count as error 1), miss rate, and
// mean upper-bound ratio.
type cellResult struct {
	err, missRate, upperRatio float64
}

func (e *Env) sweepCell(sg *sampled.Graph, kind query.Kind, pool *QueryPool, rng *rand.Rand) cellResult {
	var errSum, upSum float64
	misses := 0
	n := e.Cfg.QueriesPerRep
	for q := 0; q < n; q++ {
		rect, t1, t2 := e.Draw(pool, rng)
		exact, err := e.RegionOf(rect)
		if err != nil || exact.Empty() {
			upSum++
			continue
		}
		truth := e.countOn(exact, kind, t1, t2)
		lower, miss, _ := sg.ApproximateRegion(exact, sampled.Lower)
		if miss {
			misses++
			errSum += 1
		} else {
			errSum += RelativeError(truth, e.countOn(lower, kind, t1, t2))
		}
		upper, _, _ := sg.ApproximateRegion(exact, sampled.Upper)
		upApprox := e.countOn(upper, kind, t1, t2)
		den := truth
		if den < 1 {
			den = 1
		}
		ratio := upApprox / den
		if ratio < 1 {
			ratio = 1 // clamp noise on tiny counts
		}
		upSum += ratio
	}
	return cellResult{
		err:        errSum / float64(n),
		missRate:   float64(misses) / float64(n),
		upperRatio: upSum / float64(n),
	}
}

// baselineCell evaluates the Euler baseline at a face-sampling budget.
func (e *Env) baselineCell(m int, scaled bool, kind query.Kind, pool *QueryPool, rng *rand.Rand) cellResult {
	bl, err := euler.NewBaseline(e.Hist, m, scaled, rng)
	if err != nil {
		return cellResult{err: 1, missRate: 1, upperRatio: 1}
	}
	var errSum float64
	misses := 0
	n := e.Cfg.QueriesPerRep
	for q := 0; q < n; q++ {
		rect, t1, t2 := e.Draw(pool, rng)
		exact, rerr := e.RegionOf(rect)
		if rerr != nil || exact.Empty() {
			continue
		}
		truth := e.countOn(exact, kind, t1, t2)
		var est float64
		var miss bool
		js := junctionSetOf(exact)
		switch kind {
		case query.Snapshot:
			est, miss = bl.SnapshotCount(js, t1)
		case query.Static:
			est, miss = bl.StaticCount(js, t1, t2)
		default:
			est, miss = bl.TransientCount(js, t1, t2)
		}
		if miss {
			misses++
			errSum += 1
			continue
		}
		errSum += RelativeError(truth, est)
	}
	return cellResult{err: errSum / float64(n), missRate: float64(misses) / float64(n)}
}

// sweepWorkers bounds the sweep's concurrency.
func sweepWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// sweepOutcome bundles the three figures a sweep produces.
type sweepOutcome struct {
	Err, Miss, Upper Figure
}

// sweepGraphSize runs every method across GraphSizes at the fixed query
// area.
func (e *Env) sweepGraphSize(kind query.Kind) (sweepOutcome, error) {
	return e.sweep(GraphSizes, true, kind, FixedQueryPct)
}

// sweepQuerySize runs every method across QuerySizes at the fixed graph
// size.
func (e *Env) sweepQuerySize(kind query.Kind) (sweepOutcome, error) {
	return e.sweep(QuerySizes, false, kind, FixedGraphPct)
}

func (e *Env) sweep(xs []float64, xIsGraph bool, kind query.Kind, fixed float64) (sweepOutcome, error) {
	methods := Methods()
	out := sweepOutcome{}
	errSeries := make([]Series, len(methods)+1)
	missSeries := make([]Series, len(methods)+1)
	upSeries := make([]Series, len(methods))
	// Cells are independent: the environment is read-only during sweeps
	// (Store takes read locks) and every cell derives its own RNG, so
	// they run on a bounded worker pool.
	type cellKey struct{ mi, xi, rep int }
	results := make(map[cellKey]cellResult, len(methods)*len(xs)*e.Cfg.Reps)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, sweepWorkers())
	for mi := range methods {
		for xi, x := range xs {
			graphPct, areaPct := fixed, x
			if xIsGraph {
				graphPct, areaPct = x, fixed
			}
			budget := e.SensorBudget(graphPct)
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				wg.Add(1)
				sem <- struct{}{}
				go func(mi, xi, rep int, areaPct float64, budget int) {
					defer func() { <-sem; wg.Done() }()
					rng := e.repRNG(int64(kind), int64(mi), int64(xi), int64(rep))
					// The pool depends only on (x, rep), not the method,
					// so every method faces the same query workload.
					pool := e.NewQueryPool(e.Cfg.HistoricalQueries, areaPct,
						e.repRNG(8191, int64(kind), int64(xi), int64(rep)))
					cell := cellResult{err: 1, missRate: 1, upperRatio: 1}
					if sg, err := methods[mi].Build(e, budget, pool, rng); err == nil {
						cell = e.sweepCell(sg, kind, pool, rng)
					}
					// A Build error means the budget is too small for the
					// method (e.g. the submodular minimum): total miss.
					mu.Lock()
					results[cellKey{mi, xi, rep}] = cell
					mu.Unlock()
				}(mi, xi, rep, areaPct, budget)
			}
		}
	}
	wg.Wait()
	for mi, meth := range methods {
		errSeries[mi].Name = meth.Name
		missSeries[mi].Name = meth.Name
		upSeries[mi].Name = meth.Name
		for xi, x := range xs {
			var errs, missRates, ups []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				cell := results[cellKey{mi, xi, rep}]
				errs = append(errs, cell.err)
				missRates = append(missRates, cell.missRate)
				ups = append(ups, cell.upperRatio)
			}
			errSeries[mi].Points = append(errSeries[mi].Points, Point{X: x, Stat: NewStat(errs)})
			missSeries[mi].Points = append(missSeries[mi].Points, Point{X: x, Stat: NewStat(missRates)})
			upSeries[mi].Points = append(upSeries[mi].Points, Point{X: x, Stat: NewStat(ups)})
		}
	}
	// Euler baseline.
	bi := len(methods)
	errSeries[bi].Name = "euler-baseline"
	missSeries[bi].Name = "euler-baseline"
	for xi, x := range xs {
		graphPct, areaPct := fixed, x
		if xIsGraph {
			graphPct, areaPct = x, fixed
		}
		faces := int(float64(e.W.Star.NumNodes()) * graphPct / 100)
		if faces < 1 {
			faces = 1
		}
		var errs, missRates []float64
		for rep := 0; rep < e.Cfg.Reps; rep++ {
			rng := e.repRNG(int64(kind), int64(bi), int64(xi), int64(rep))
			pool := e.NewQueryPool(e.Cfg.HistoricalQueries, areaPct,
				e.repRNG(8191, int64(kind), int64(xi), int64(rep)))
			// The paper's baseline sums the sampled faces directly
			// (a lower bound); the Horvitz–Thompson scaled variant is
			// kept as an ablation (AblationBaselineScaling).
			cell := e.baselineCell(faces, false, kind, pool, rng)
			errs = append(errs, cell.err)
			missRates = append(missRates, cell.missRate)
		}
		errSeries[bi].Points = append(errSeries[bi].Points, Point{X: x, Stat: NewStat(errs)})
		missSeries[bi].Points = append(missSeries[bi].Points, Point{X: x, Stat: NewStat(missRates)})
	}
	xlabel := "query area (% of domain)"
	if xIsGraph {
		xlabel = "sampled graph size (% of |V(G)|)"
	}
	out.Err = Figure{XLabel: xlabel, YLabel: "relative error (lower bound)", Series: errSeries}
	out.Miss = Figure{XLabel: xlabel, YLabel: "query miss rate", Series: missSeries}
	out.Upper = Figure{XLabel: xlabel, YLabel: "upper-bound ratio (≥1)", Series: upSeries}
	return out, nil
}

// Fig11a reproduces Fig. 11a: transient lower-bound relative error vs
// sampled graph size.
func (e *Env) Fig11a() (Figure, error) {
	o, err := e.sweepGraphSize(query.Transient)
	if err != nil {
		return Figure{}, err
	}
	f := o.Err
	f.ID, f.Title = "fig11a", "Transient rel. error vs graph size"
	return f, nil
}

// Fig11b reproduces Fig. 11b: transient relative error vs query size.
func (e *Env) Fig11b() (Figure, error) {
	o, err := e.sweepQuerySize(query.Transient)
	if err != nil {
		return Figure{}, err
	}
	f := o.Err
	f.ID, f.Title = "fig11b", "Transient rel. error vs query size"
	return f, nil
}

// Fig12a reproduces Fig. 12a: static lower-bound relative error vs graph
// size.
func (e *Env) Fig12a() (Figure, error) {
	o, err := e.sweepGraphSize(query.Static)
	if err != nil {
		return Figure{}, err
	}
	f := o.Err
	f.ID, f.Title = "fig12a", "Static rel. error vs graph size"
	return f, nil
}

// Fig12b reproduces Fig. 12b: static relative error vs query size.
func (e *Env) Fig12b() (Figure, error) {
	o, err := e.sweepQuerySize(query.Static)
	if err != nil {
		return Figure{}, err
	}
	f := o.Err
	f.ID, f.Title = "fig12b", "Static rel. error vs query size"
	return f, nil
}

// Fig13ab reproduces Fig. 13a/b: query miss rate vs graph size and vs
// query size.
func (e *Env) Fig13ab() (Figure, Figure, error) {
	a, err := e.sweepGraphSize(query.Static)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	b, err := e.sweepQuerySize(query.Static)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	fa, fb := a.Miss, b.Miss
	fa.ID, fa.Title = "fig13a", "Query misses vs graph size"
	fb.ID, fb.Title = "fig13b", "Query misses vs query size"
	return fa, fb, nil
}

// Fig13cd reproduces Fig. 13c/d: upper-bound count ratio vs graph size
// and vs query size.
func (e *Env) Fig13cd() (Figure, Figure, error) {
	a, err := e.sweepGraphSize(query.Static)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	b, err := e.sweepQuerySize(query.Static)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	fa, fb := a.Upper, b.Upper
	fa.ID, fa.Title = "fig13c", "Upper-bound ratio vs graph size"
	fb.ID, fb.Title = "fig13d", "Upper-bound ratio vs query size"
	return fa, fb, nil
}

// Fig11c reproduces Fig. 11c: sensors accessed vs query size, for a 6.4%
// and a 51.2% sampled graph against the unsampled graph and the baseline.
func (e *Env) Fig11c() (Figure, error) {
	type variant struct {
		name string
		pct  float64 // sampled graph size; 0 = unsampled, −1 = baseline
	}
	variants := []variant{
		{"sampled-6.4%", 6.4},
		{"sampled-51.2%", 51.2},
		{"unsampled", 0},
		{"euler-baseline", -1},
	}
	fig := Figure{
		ID: "fig11c", Title: "Nodes accessed vs query size",
		XLabel: "query area (% of domain)", YLabel: "sensors accessed",
	}
	for vi, v := range variants {
		s := Series{Name: v.name}
		for xi, areaPct := range QuerySizes {
			var vals []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				rng := e.repRNG(311, int64(vi), int64(xi), int64(rep))
				eng, bl, err := e.accessEngine(v.pct, rng)
				if err != nil {
					continue
				}
				for q := 0; q < e.Cfg.QueriesPerRep; q++ {
					rect, t1, _ := e.RandomQuery(areaPct, rng)
					if bl != nil {
						// Baseline accesses its sampled faces inside Q_R.
						r, err := e.RegionOf(rect)
						if err != nil {
							continue
						}
						n := 0
						for _, j := range r.Junctions() {
							for _, sj := range bl.Sampled {
								if sj == j {
									n++
									break
								}
							}
						}
						vals = append(vals, float64(n))
						continue
					}
					resp, err := eng.Query(query.Request{Rect: rect, T1: t1, Kind: query.Snapshot, Bound: sampled.Lower})
					if err != nil || resp.Missed {
						continue
					}
					vals = append(vals, float64(resp.Net.NodesAccessed))
				}
			}
			if len(vals) == 0 {
				vals = []float64{0}
			}
			s.Points = append(s.Points, Point{X: areaPct, Stat: NewStat(vals)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// accessEngine builds the engine (and optional baseline) for one Fig-11c
// variant.
func (e *Env) accessEngine(pct float64, rng *rand.Rand) (*query.Engine, *euler.Baseline, error) {
	switch {
	case pct == 0:
		return query.NewEngine(e.W, e.Store, e.Store), nil, nil
	case pct < 0:
		faces := int(float64(e.W.Star.NumNodes()) * FixedGraphPct / 100)
		bl, err := euler.NewBaseline(e.Hist, faces, true, rng)
		return nil, bl, err
	default:
		sel, err := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, e.SensorBudget(pct), rng)
		if err != nil {
			return nil, nil, err
		}
		sg, err := sampled.Build(e.W, sel, sampled.Options{Connect: sampled.Triangulation})
		if err != nil {
			return nil, nil, err
		}
		return query.NewSampledEngine(sg, e.Store, e.Store), nil, nil
	}
}

// Fig11d reproduces Fig. 11d: query execution time vs query size,
// sampled (6.4%) vs unsampled.
func (e *Env) Fig11d() (Figure, error) {
	fig := Figure{
		ID: "fig11d", Title: "Query execution time vs query size",
		XLabel: "query area (% of domain)", YLabel: "time per query (µs)",
	}
	rng := e.repRNG(411)
	sel, err := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, e.SensorBudget(FixedGraphPct), rng)
	if err != nil {
		return fig, err
	}
	sg, err := sampled.Build(e.W, sel, sampled.Options{Connect: sampled.Triangulation})
	if err != nil {
		return fig, err
	}
	engines := []struct {
		name string
		eng  *query.Engine
	}{
		{"sampled-6.4%", query.NewSampledEngine(sg, e.Store, e.Store)},
		{"unsampled", query.NewEngine(e.W, e.Store, e.Store)},
	}
	for _, en := range engines {
		s := Series{Name: en.name}
		for xi, areaPct := range QuerySizes {
			var times []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				r := e.repRNG(412, int64(xi), int64(rep))
				for q := 0; q < e.Cfg.QueriesPerRep; q++ {
					rect, t1, t2 := e.RandomQuery(areaPct, r)
					start := time.Now()
					_, err := en.eng.Query(query.Request{
						Rect: rect, T1: t1, T2: t2, Kind: query.Transient, Bound: sampled.Lower})
					el := time.Since(start)
					if err == nil {
						times = append(times, float64(el.Microseconds()))
					}
				}
			}
			s.Points = append(s.Points, Point{X: areaPct, Stat: NewStat(times)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig11e reproduces Fig. 11e: the CDF of per-edge storage for explicit
// timestamps vs the constant-size regression models.
func (e *Env) Fig11e() (Figure, error) {
	fig := Figure{
		ID: "fig11e", Title: "Per-edge storage CDF",
		XLabel: "bytes per edge", YLabel: "CDF over active edges",
	}
	exact := e.Store.Storage()
	var sizes []float64
	for _, n := range exact.TimestampsPerRoad {
		if n > 0 {
			sizes = append(sizes, float64(n*8))
		}
	}
	sort.Float64s(sizes)
	exactSeries := Series{Name: "exact"}
	for i := 0; i < len(sizes); i += maxInt(1, len(sizes)/24) {
		exactSeries.Points = append(exactSeries.Points, Point{
			X:    sizes[i],
			Stat: Stat{Median: float64(i+1) / float64(len(sizes)), N: len(sizes)},
		})
	}
	exactSeries.Points = append(exactSeries.Points, Point{
		X: sizes[len(sizes)-1], Stat: Stat{Median: 1, N: len(sizes)}})
	fig.Series = append(fig.Series, exactSeries)
	for _, tr := range learned.Registry() {
		if tr.Name() == "exact" {
			continue
		}
		ls := learned.FromExact(e.Store, tr)
		var msizes []float64
		for _, s := range ls.PerEdgeSizes() {
			if s > 0 {
				msizes = append(msizes, float64(s))
			}
		}
		sort.Float64s(msizes)
		s := Series{Name: tr.Name()}
		// Constant models: CDF is a step; two points suffice.
		s.Points = append(s.Points,
			Point{X: msizes[0], Stat: Stat{Median: 0, N: len(msizes)}},
			Point{X: msizes[len(msizes)-1], Stat: Stat{Median: 1, N: len(msizes)}})
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig14a reproduces Fig. 14a: lower-bound relative error of k-NN
// connectivity vs triangulation over query sizes.
func (e *Env) Fig14a() (Figure, error) {
	fig := Figure{
		ID: "fig14a", Title: "k-NN connectivity rel. error vs query size",
		XLabel: "query area (% of domain)", YLabel: "relative error (lower bound)",
	}
	f14a, _, err := e.knnSweep()
	if err != nil {
		return fig, err
	}
	fig.Series = f14a
	return fig, nil
}

// Fig14b reproduces Fig. 14b: sensing edges accessed per query for the
// same connectivity variants.
func (e *Env) Fig14b() (Figure, error) {
	fig := Figure{
		ID: "fig14b", Title: "Edges accessed vs query size",
		XLabel: "query area (% of domain)", YLabel: "perimeter edges accessed",
	}
	_, f14b, err := e.knnSweep()
	if err != nil {
		return fig, err
	}
	fig.Series = f14b
	return fig, nil
}

func (e *Env) knnSweep() (errSeries, edgeSeries []Series, err error) {
	variants := []struct {
		name string
		opt  sampled.Options
	}{
		{"knn-k2", sampled.Options{Connect: sampled.KNN, K: 2}},
		{"knn-k3", sampled.Options{Connect: sampled.KNN, K: 3}},
		{"knn-k5", sampled.Options{Connect: sampled.KNN, K: 5}},
		{"knn-k8", sampled.Options{Connect: sampled.KNN, K: 8}},
		{"triangulation", sampled.Options{Connect: sampled.Triangulation}},
	}
	budget := e.SensorBudget(FixedGraphPct)
	for vi, v := range variants {
		es := Series{Name: v.name}
		gs := Series{Name: v.name}
		for xi, areaPct := range QuerySizes {
			var errs, edges []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				rng := e.repRNG(514, int64(vi), int64(xi), int64(rep))
				sel, serr := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, budget, rng)
				if serr != nil {
					return nil, nil, serr
				}
				sg, berr := sampled.Build(e.W, sel, v.opt)
				if berr != nil {
					return nil, nil, berr
				}
				var errSum, edgeSum float64
				n := 0
				for q := 0; q < e.Cfg.QueriesPerRep; q++ {
					rect, t1, t2 := e.RandomQuery(areaPct, rng)
					exact, rerr := e.RegionOf(rect)
					if rerr != nil || exact.Empty() {
						continue
					}
					truth := e.countOn(exact, query.Transient, t1, t2)
					lower, miss, _ := sg.ApproximateRegion(exact, sampled.Lower)
					n++
					if miss {
						errSum += 1
						continue
					}
					errSum += RelativeError(truth, e.countOn(lower, query.Transient, t1, t2))
					edgeSum += float64(len(lower.CutRoads()))
				}
				if n > 0 {
					errs = append(errs, errSum/float64(n))
					edges = append(edges, edgeSum/float64(n))
				}
			}
			es.Points = append(es.Points, Point{X: areaPct, Stat: NewStat(errs)})
			gs.Points = append(gs.Points, Point{X: areaPct, Stat: NewStat(edges)})
		}
		errSeries = append(errSeries, es)
		edgeSeries = append(edgeSeries, gs)
	}
	return errSeries, edgeSeries, nil
}

// Fig14cd reproduces Fig. 14c/d: the extra error introduced by replacing
// exact tracking forms with regression models, measured against the
// counts of the exact store on the same sampled regions — static (c) and
// transient (d).
func (e *Env) Fig14cd() (Figure, Figure, error) {
	figC := Figure{
		ID: "fig14c", Title: "Regression model added error (static)",
		XLabel: "query area (% of domain)", YLabel: "relative error vs exact forms",
	}
	figD := Figure{
		ID: "fig14d", Title: "Regression model added error (transient)",
		XLabel: "query area (% of domain)", YLabel: "relative error vs exact forms",
	}
	rng := e.repRNG(614)
	sel, err := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, e.SensorBudget(FixedGraphPct), rng)
	if err != nil {
		return figC, figD, err
	}
	sg, err := sampled.Build(e.W, sel, sampled.Options{Connect: sampled.Triangulation})
	if err != nil {
		return figC, figD, err
	}
	for _, tr := range learned.Registry() {
		if tr.Name() == "exact" {
			continue
		}
		ls := learned.FromExact(e.Store, tr)
		sc := Series{Name: tr.Name()}
		sd := Series{Name: tr.Name()}
		for xi, areaPct := range QuerySizes {
			var errsC, errsD []float64
			for rep := 0; rep < e.Cfg.Reps; rep++ {
				r := e.repRNG(615, int64(xi), int64(rep))
				var cSum, dSum float64
				n := 0
				for q := 0; q < e.Cfg.QueriesPerRep; q++ {
					rect, t1, t2 := e.RandomQuery(areaPct, r)
					exact, rerr := e.RegionOf(rect)
					if rerr != nil || exact.Empty() {
						continue
					}
					lower, miss, _ := sg.ApproximateRegion(exact, sampled.Lower)
					if miss {
						continue
					}
					n++
					exC := core.StaticCount(e.Store, e.Store, lower, t1, t2)
					apC := core.StaticCountSampled(ls, lower, t1, t2, 16)
					cSum += RelativeError(exC, apC)
					exD := core.TransientCount(e.Store, lower, t1, t2)
					apD := core.TransientCount(ls, lower, t1, t2)
					dSum += RelativeError(exD, apD)
				}
				if n > 0 {
					errsC = append(errsC, cSum/float64(n))
					errsD = append(errsD, dSum/float64(n))
				}
			}
			sc.Points = append(sc.Points, Point{X: areaPct, Stat: NewStat(errsC)})
			sd.Points = append(sd.Points, Point{X: areaPct, Stat: NewStat(errsD)})
		}
		figC.Series = append(figC.Series, sc)
		figD.Series = append(figD.Series, sd)
	}
	return figC, figD, nil
}

// Headline reproduces the abstract's summary numbers.
type Headline struct {
	// SensorFraction is the sampled-graph size used (25.6%).
	SensorFraction float64
	// RelError is the median transient lower-bound relative error over
	// the full query-size mix.
	RelError float64
	// RelErrorLarge is the median error restricted to the largest query
	// size of the sweep — the regime the paper's "at most 13.8%" number
	// describes (large queries over a fine sensing graph).
	RelErrorLarge float64
	// Speedup is unsampled time / sampled time per query.
	Speedup float64
	// NodeAccessReduction is 1 − sampled/unsampled nodes accessed.
	NodeAccessReduction float64
	// StorageReduction is 1 − learned-sampled bytes / exact-full bytes.
	StorageReduction float64
}

// String implements fmt.Stringer.
func (h Headline) String() string {
	return fmt.Sprintf(
		"sensors=%.1f%%  relErr(mix)=%.1f%%  relErr(largeQ)=%.1f%%  speedup=%.2fx  nodeAccess=-%.2f%%  storage=-%.2f%%",
		h.SensorFraction, h.RelError*100, h.RelErrorLarge*100, h.Speedup,
		h.NodeAccessReduction*100, h.StorageReduction*100)
}

// RunHeadline measures the abstract's headline numbers at a 25.6% sensor
// budget with the QuadTree sampler.
func (e *Env) RunHeadline() (Headline, error) {
	const pct = 25.6
	h := Headline{SensorFraction: pct}
	rng := e.repRNG(777)
	sel, err := (sampling.QuadTreeSampler{Randomized: true}).Sample(e.Candidates, e.SensorBudget(pct), rng)
	if err != nil {
		return h, err
	}
	sg, err := sampled.Build(e.W, sel, sampled.Options{Connect: sampled.Triangulation})
	if err != nil {
		return h, err
	}
	sEng := query.NewSampledEngine(sg, e.Store, e.Store)
	uEng := query.NewEngine(e.W, e.Store, e.Store)
	var errs, errsLarge []float64
	var sNodes, uNodes, sTime, uTime float64
	queries := e.Cfg.Reps * e.Cfg.QueriesPerRep
	largest := QuerySizes[len(QuerySizes)-1]
	for q := 0; q < queries; q++ {
		// Mix the full query-size sweep so the aggregate speedup and
		// access reduction are representative of the whole evaluation.
		size := QuerySizes[q%len(QuerySizes)]
		rect, t1, t2 := e.RandomQuery(size, rng)
		start := time.Now()
		ur, err := uEng.Query(query.Request{Rect: rect, T1: t1, T2: t2, Kind: query.Transient})
		uTime += float64(time.Since(start).Nanoseconds())
		if err != nil {
			continue
		}
		start = time.Now()
		sr, err := sEng.Query(query.Request{Rect: rect, T1: t1, T2: t2,
			Kind: query.Transient, Bound: sampled.Lower})
		sTime += float64(time.Since(start).Nanoseconds())
		if err != nil {
			continue
		}
		err2 := 1.0
		if !sr.Missed {
			err2 = RelativeError(ur.Count, sr.Count)
			sNodes += float64(sr.Net.NodesAccessed)
			uNodes += float64(ur.Net.NodesAccessed)
		}
		errs = append(errs, err2)
		if size == largest {
			errsLarge = append(errsLarge, err2)
		}
	}
	h.RelError = quantile(errs, 0.5)
	h.RelErrorLarge = quantile(errsLarge, 0.5)
	if sTime > 0 {
		h.Speedup = uTime / sTime
	}
	if uNodes > 0 {
		h.NodeAccessReduction = 1 - sNodes/uNodes
	}
	// Storage: learned models on monitored roads only vs the exact full
	// store.
	ls := learned.FromExact(e.Store, learned.LinearTrainer{})
	learnedBytes := ls.Storage(sg.MonitoredRoads)
	exactBytes := e.Store.Storage().Bytes
	if exactBytes > 0 {
		h.StorageReduction = 1 - float64(learnedBytes)/float64(exactBytes)
	}
	return h, nil
}
