// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrate: workload construction,
// parameter sweeps, repetition with median/IQR aggregation, and plain-
// text series rendering. Each Fig* function corresponds to one figure of
// the paper; EXPERIMENTS.md records the measured outcomes next to the
// published ones.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/euler"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/planar"
	"repro/internal/roadnet"
	"repro/internal/sampled"
	"repro/internal/sampling"
	"repro/internal/submodular"
)

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives every random choice; runs are reproducible.
	Seed int64
	// City configures the synthetic mobility graph.
	City roadnet.GridOpts
	// Mobility configures the moving-object workload.
	Mobility mobility.Opts
	// Reps is the number of repetitions per configuration (paper: 50).
	Reps int
	// QueriesPerRep is the number of random queries evaluated per rep.
	QueriesPerRep int
	// HistoricalQueries is the submodular method's training set size
	// (paper: 100).
	HistoricalQueries int
	// EulerBucket is the baseline's histogram bucket width in seconds.
	EulerBucket float64
}

// DefaultConfig returns the configuration used by cmd/stqbench: the
// paper's shape at a laptop-friendly scale.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		City:              roadnet.DefaultGridOpts(),
		Mobility:          mobility.DefaultOpts(),
		Reps:              7,
		QueriesPerRep:     12,
		HistoricalQueries: 100,
		EulerBucket:       1800,
	}
}

// QuickConfig returns a small configuration for smoke tests.
func QuickConfig() Config {
	return Config{
		Seed: 1,
		City: roadnet.GridOpts{NX: 12, NY: 12, Spacing: 100, Jitter: 0.25,
			RemoveFrac: 0.2, CurveFrac: 0.1},
		Mobility: mobility.Opts{Objects: 150, Horizon: 2 * 24 * 3600,
			TripsPerObject: 4, MeanSpeed: 12, MeanPause: 900,
			LeaveProb: 0.5, HotspotBias: 0.4},
		Reps:              3,
		QueriesPerRep:     6,
		HistoricalQueries: 40,
		EulerBucket:       1800,
	}
}

// GraphSizes is the sampled-graph size sweep of Figs. 11a/12a/13 in
// percent of the candidate sensor count.
var GraphSizes = []float64{0.8, 1.6, 3.2, 6.4, 12.8, 25.6, 51.2}

// QuerySizes is the query-area sweep of Figs. 11b/12b/11c in percent of
// the total sensing area (1.08% is the paper's fixed size).
var QuerySizes = []float64{0.27, 0.54, 1.08, 2.16, 4.32, 8.64, 17.28}

// FixedQueryPct is the fixed query size of the graph-size sweeps.
const FixedQueryPct = 1.08

// FixedGraphPct is the fixed sampled-graph size of the query-size sweeps
// (the paper's "median graph size of 6%").
const FixedGraphPct = 6.4

// Env is the shared evaluation environment: one world, one workload, one
// fed exact store, ground truth, and the baseline histogram.
type Env struct {
	Cfg    Config
	W      *roadnet.World
	WL     *mobility.Workload
	Store  *core.Store
	Oracle *mobility.Oracle
	Hist   *euler.Histogram
	// Candidates is the sensor candidate pool (interior dual nodes).
	Candidates []sampling.Candidate
}

// NewEnv builds the environment for a config.
func NewEnv(cfg Config) (*Env, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w, err := roadnet.GridCity(cfg.City, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: building city: %w", err)
	}
	wl, err := mobility.Generate(w, cfg.Mobility, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating workload: %w", err)
	}
	st := core.NewStore(w)
	if err := wl.Feed(st); err != nil {
		return nil, fmt.Errorf("experiments: feeding store: %w", err)
	}
	hist, err := euler.BuildHistogram(wl, cfg.EulerBucket)
	if err != nil {
		return nil, fmt.Errorf("experiments: building baseline histogram: %w", err)
	}
	return &Env{
		Cfg:        cfg,
		W:          w,
		WL:         wl,
		Store:      st,
		Oracle:     mobility.NewOracle(wl),
		Hist:       hist,
		Candidates: sampling.CandidatesFromDual(w.Dual.InteriorNodes(), w.Dual.G.Point),
	}, nil
}

// SensorBudget converts a graph-size percentage to a sensor count.
func (e *Env) SensorBudget(pct float64) int {
	m := int(math.Round(float64(len(e.Candidates)) * pct / 100))
	if m < 3 {
		m = 3
	}
	if m > len(e.Candidates) {
		m = len(e.Candidates)
	}
	return m
}

// RandomQuery draws a random rectangular query of the given area
// percentage with a random 10–30% temporal window.
func (e *Env) RandomQuery(areaPct float64, rng *rand.Rand) (geom.Rect, float64, float64) {
	b := e.W.Bounds()
	area := b.Area() * areaPct / 100
	aspect := 0.5 + rng.Float64()*1.5
	qw := math.Sqrt(area * aspect)
	qh := area / qw
	if qw > b.Width() {
		qw = b.Width()
		qh = area / qw
	}
	if qh > b.Height() {
		qh = b.Height()
	}
	x := b.Min.X + rng.Float64()*math.Max(0, b.Width()-qw)
	y := b.Min.Y + rng.Float64()*math.Max(0, b.Height()-qh)
	span := e.WL.Horizon * (0.1 + rng.Float64()*0.2)
	t1 := 0.05*e.WL.Horizon + rng.Float64()*(0.9*e.WL.Horizon-span)
	return geom.RectWH(x, y, qw, qh), t1, t1 + span
}

// RegionOf converts a rect to the exact query region.
func (e *Env) RegionOf(rect geom.Rect) (*core.Region, error) {
	return core.NewRegion(e.W, e.W.JunctionsIn(rect))
}

// QueryPool is the evaluation-time query workload of one sweep cell: a
// set of spatial regions drawn from the (known) query distribution. The
// paper's query-adaptive method trains on historical queries from the
// same distribution the evaluation draws from (§5.1.5), so the pool is
// shared: submodular selection sees the pool's regions, and every method
// is evaluated on queries sampled from the pool (with fresh temporal
// windows).
type QueryPool struct {
	Rects []geom.Rect
}

// NewQueryPool draws n query rectangles of the given area percentage.
func (e *Env) NewQueryPool(n int, areaPct float64, rng *rand.Rand) *QueryPool {
	p := &QueryPool{Rects: make([]geom.Rect, n)}
	for i := range p.Rects {
		rect, _, _ := e.RandomQuery(areaPct, rng)
		p.Rects[i] = rect
	}
	return p
}

// Draw picks a pool rectangle and a fresh temporal window.
func (e *Env) Draw(p *QueryPool, rng *rand.Rand) (geom.Rect, float64, float64) {
	rect := p.Rects[rng.Intn(len(p.Rects))]
	span := e.WL.Horizon * (0.1 + rng.Float64()*0.2)
	t1 := 0.05*e.WL.Horizon + rng.Float64()*(0.9*e.WL.Horizon-span)
	return rect, t1, t1 + span
}

// Method identifies a sensor-selection strategy in the sweep figures.
type Method struct {
	// Name as shown in figure legends.
	Name string
	// Build constructs the sampled graph for a sensor budget. Query-
	// adaptive methods may inspect the query pool; oblivious ones ignore
	// it.
	Build func(e *Env, m int, pool *QueryPool, rng *rand.Rand) (*sampled.Graph, error)
}

// SamplerMethod wraps a query-oblivious sampler with triangulation
// connectivity.
func SamplerMethod(s sampling.Sampler) Method {
	return Method{
		Name: s.Name(),
		Build: func(e *Env, m int, _ *QueryPool, rng *rand.Rand) (*sampled.Graph, error) {
			sel, err := s.Sample(e.Candidates, m, rng)
			if err != nil {
				return nil, err
			}
			return sampled.Build(e.W, sel, sampled.Options{Connect: sampled.Triangulation})
		},
	}
}

// SubmodularMethod is the query-adaptive selection trained on the
// historical query pool.
func SubmodularMethod() Method {
	return Method{
		Name: "submodular",
		Build: func(e *Env, m int, pool *QueryPool, rng *rand.Rand) (*sampled.Graph, error) {
			var hist []*core.Region
			for _, rect := range pool.Rects {
				r, err := e.RegionOf(rect)
				if err != nil {
					return nil, err
				}
				if !r.Empty() {
					hist = append(hist, r)
				}
			}
			res, err := submodular.SelectForQueries(e.W, hist, m)
			if err != nil {
				return nil, err
			}
			return sampled.BuildFromDualEdges(e.W, res.DualEdges)
		},
	}
}

// Methods returns the full method roster of the sweep figures.
func Methods() []Method {
	out := make([]Method, 0, 6)
	for _, s := range sampling.All() {
		out = append(out, SamplerMethod(s))
	}
	out = append(out, SubmodularMethod())
	return out
}

// RelativeError is the paper's error measure |η − η̂| / η against the
// unsampled-graph count η, guarded for the near-zero denominators that
// transient (net-flow) counts produce.
func RelativeError(exact, approx float64) float64 {
	den := math.Abs(exact)
	if den < 1 {
		den = 1
	}
	return math.Abs(exact-approx) / den
}

// quantiles returns the q-quantile of a copy of xs by linear
// interpolation.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// Stat summarizes repeated measurements the way the paper plots them:
// median with 25th/75th percentiles.
type Stat struct {
	Median, P25, P75 float64
	N                int
}

// NewStat computes the summary of xs.
func NewStat(xs []float64) Stat {
	return Stat{
		Median: quantile(xs, 0.5),
		P25:    quantile(xs, 0.25),
		P75:    quantile(xs, 0.75),
		N:      len(xs),
	}
}

// Point is one x position of a series with its aggregated statistic.
type Point struct {
	X float64
	Stat
}

// Series is one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced figure: several series over a shared x axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// junctionSetOf converts a region to the baseline's junction slice.
func junctionSetOf(r *core.Region) []planar.NodeID { return r.Junctions() }
