package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: i, P: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
	}
	return items
}

func bruteRange(items []Item, r geom.Rect) []int {
	var out []int
	for _, it := range items {
		if r.Contains(it.P) {
			out = append(out, it.ID)
		}
	}
	sort.Ints(out)
	return out
}

func bruteNearest(items []Item, p geom.Point) Item {
	best := items[0]
	for _, it := range items[1:] {
		if it.P.Dist2(p) < best.P.Dist2(p) {
			best = it
		}
	}
	return best
}

func ids(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKDTreeRangeAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 300)
	kt := BuildKDTree(items)
	if kt.Len() != 300 {
		t.Fatalf("Len = %d", kt.Len())
	}
	for trial := 0; trial < 50; trial++ {
		r := geom.NewRect(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100))
		got := ids(kt.Range(r, nil))
		want := bruteRange(items, r)
		if !equalInts(got, want) {
			t.Fatalf("range %v: got %d items, want %d", r, len(got), len(want))
		}
	}
}

func TestKDTreeNearestAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 200)
	kt := BuildKDTree(items)
	for trial := 0; trial < 100; trial++ {
		p := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10)
		got, ok := kt.Nearest(p)
		if !ok {
			t.Fatal("Nearest failed")
		}
		want := bruteNearest(items, p)
		if got.P.Dist2(p) != want.P.Dist2(p) {
			t.Fatalf("nearest to %v: got %v, want %v", p, got, want)
		}
	}
}

func TestKDTreeKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomItems(rng, 150)
	kt := BuildKDTree(items)
	for trial := 0; trial < 30; trial++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := 1 + rng.Intn(10)
		got := kt.KNearest(p, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		// Compare against brute-force sorted distances.
		byDist := make([]Item, len(items))
		copy(byDist, items)
		sort.Slice(byDist, func(i, j int) bool {
			return byDist[i].P.Dist2(p) < byDist[j].P.Dist2(p)
		})
		for i := 0; i < k; i++ {
			if got[i].P.Dist2(p) != byDist[i].P.Dist2(p) {
				t.Fatalf("k-NN rank %d: got dist %v, want %v",
					i, got[i].P.Dist2(p), byDist[i].P.Dist2(p))
			}
		}
		// Results must be ordered nearest first.
		for i := 1; i < k; i++ {
			if got[i-1].P.Dist2(p) > got[i].P.Dist2(p) {
				t.Fatal("k-NN results not ordered")
			}
		}
	}
}

func TestKDTreeEmpty(t *testing.T) {
	kt := BuildKDTree(nil)
	if kt.Len() != 0 {
		t.Error("empty tree has items")
	}
	if _, ok := kt.Nearest(geom.Pt(0, 0)); ok {
		t.Error("Nearest on empty tree succeeded")
	}
	if got := kt.Range(geom.RectWH(0, 0, 1, 1), nil); got != nil {
		t.Error("Range on empty tree returned items")
	}
	if got := kt.KNearest(geom.Pt(0, 0), 3); got != nil {
		t.Error("KNearest on empty tree returned items")
	}
}

func TestKDTreeLeavesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 137)
	kt := BuildKDTree(items)
	for _, maxLeaf := range []int{1, 4, 16, 200} {
		leaves := kt.Leaves(maxLeaf)
		var all []int
		for _, leaf := range leaves {
			if len(leaf) == 0 {
				t.Error("empty leaf")
			}
			for _, it := range leaf {
				all = append(all, it.ID)
			}
		}
		sort.Ints(all)
		if !equalInts(all, ids(items)) {
			t.Fatalf("maxLeaf=%d: leaves do not partition the items", maxLeaf)
		}
	}
}

func TestQuadTreeRangeAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 300)
	qt := BuildQuadTree(items, 8)
	if qt.Len() != 300 {
		t.Fatalf("Len = %d", qt.Len())
	}
	for trial := 0; trial < 50; trial++ {
		r := geom.NewRect(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100))
		got := ids(qt.Range(r, nil))
		want := bruteRange(items, r)
		if !equalInts(got, want) {
			t.Fatalf("range %v: got %d items, want %d", r, len(got), len(want))
		}
	}
}

func TestQuadTreeNearestAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomItems(rng, 200)
	qt := BuildQuadTree(items, 4)
	for trial := 0; trial < 100; trial++ {
		p := geom.Pt(rng.Float64()*120-10, rng.Float64()*120-10)
		got, ok := qt.Nearest(p)
		if !ok {
			t.Fatal("Nearest failed")
		}
		want := bruteNearest(items, p)
		if got.P.Dist2(p) != want.P.Dist2(p) {
			t.Fatalf("nearest to %v: got %v, want %v", p, got, want)
		}
	}
}

func TestQuadTreeLeavesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(rng, 211)
	qt := BuildQuadTree(items, 5)
	leaves := qt.Leaves()
	var all []int
	for _, leaf := range leaves {
		if len(leaf) == 0 {
			t.Error("empty leaf returned")
		}
		if len(leaf) > 5 {
			t.Errorf("leaf size %d exceeds capacity 5", len(leaf))
		}
		for _, it := range leaf {
			all = append(all, it.ID)
		}
	}
	sort.Ints(all)
	if !equalInts(all, ids(items)) {
		t.Fatal("leaves do not partition the items")
	}
	if qt.Depth() < 1 {
		t.Error("tree of 211 items with capacity 5 has depth 0")
	}
}

func TestQuadTreeEmpty(t *testing.T) {
	qt := BuildQuadTree(nil, 4)
	if qt.Len() != 0 {
		t.Error("empty tree has items")
	}
	if _, ok := qt.Nearest(geom.Pt(0, 0)); ok {
		t.Error("Nearest on empty tree succeeded")
	}
	if leaves := qt.Leaves(); leaves != nil {
		t.Error("Leaves on empty tree returned data")
	}
}

func TestQuadTreeDuplicatePoints(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: i, P: geom.Pt(1, 1)}
	}
	qt := BuildQuadTree(items, 2)
	got := qt.Range(geom.RectWH(0, 0, 2, 2), nil)
	if len(got) != 20 {
		t.Errorf("duplicate-point range = %d, want 20", len(got))
	}
}

func TestKDTreePropertyRandomizedEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items := randomItems(rng, 1+rng.Intn(80))
		kt := BuildKDTree(items)
		qt := BuildQuadTree(items, 1+rng.Intn(8))
		r := geom.NewRect(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			geom.Pt(rng.Float64()*100, rng.Float64()*100))
		a := ids(kt.Range(r, nil))
		b := ids(qt.Range(r, nil))
		return equalInts(a, b) && equalInts(a, bruteRange(items, r))
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
