package index

import (
	"repro/internal/geom"
)

// QuadTree is a point-region quadtree: space is recursively split into
// four equal quadrants until each leaf holds at most MaxLeaf items.
type QuadTree struct {
	// MaxLeaf is the leaf capacity used at Build time.
	MaxLeaf int
	root    *quadNode
	size    int
}

type quadNode struct {
	bounds   geom.Rect
	items    []Item       // leaf payload (nil for internal nodes)
	children [4]*quadNode // nil for leaves
}

// BuildQuadTree constructs a quadtree over items with leaf capacity
// maxLeaf (minimum 1). Duplicate points beyond maxLeaf terminate
// splitting once quadrants reach degenerate size, keeping the tree finite.
func BuildQuadTree(items []Item, maxLeaf int) *QuadTree {
	if maxLeaf < 1 {
		maxLeaf = 1
	}
	t := &QuadTree{MaxLeaf: maxLeaf, size: len(items)}
	if len(items) == 0 {
		return t
	}
	pts := make([]geom.Point, len(items))
	for i, it := range items {
		pts[i] = it.P
	}
	bounds := geom.BoundingRect(pts).Expand(geom.Eps)
	all := make([]Item, len(items))
	copy(all, items)
	t.root = buildQuad(bounds, all, maxLeaf)
	return t
}

func buildQuad(bounds geom.Rect, items []Item, maxLeaf int) *quadNode {
	n := &quadNode{bounds: bounds}
	if len(items) <= maxLeaf || bounds.Width() <= 4*geom.Eps || bounds.Height() <= 4*geom.Eps {
		n.items = items
		return n
	}
	c := bounds.Center()
	quadrants := [4]geom.Rect{
		{Min: bounds.Min, Max: c}, // SW
		{Min: geom.Pt(c.X, bounds.Min.Y), Max: geom.Pt(bounds.Max.X, c.Y)}, // SE
		{Min: geom.Pt(bounds.Min.X, c.Y), Max: geom.Pt(c.X, bounds.Max.Y)}, // NW
		{Min: c, Max: bounds.Max}, // NE
	}
	var parts [4][]Item
	for _, it := range items {
		q := 0
		if it.P.X >= c.X {
			q |= 1
		}
		if it.P.Y >= c.Y {
			q |= 2
		}
		parts[q] = append(parts[q], it)
	}
	for q := range quadrants {
		if len(parts[q]) > 0 {
			n.children[q] = buildQuad(quadrants[q], parts[q], maxLeaf)
		}
	}
	return n
}

// Len returns the number of indexed items.
func (t *QuadTree) Len() int { return t.size }

// Range appends every item inside r to dst and returns it.
func (t *QuadTree) Range(r geom.Rect, dst []Item) []Item {
	return quadRange(t.root, r, dst)
}

func quadRange(n *quadNode, r geom.Rect, dst []Item) []Item {
	if n == nil || !r.Intersects(n.bounds) {
		return dst
	}
	if n.items != nil || isQuadLeaf(n) {
		for _, it := range n.items {
			if r.Contains(it.P) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = quadRange(c, r, dst)
	}
	return dst
}

func isQuadLeaf(n *quadNode) bool {
	return n.children[0] == nil && n.children[1] == nil &&
		n.children[2] == nil && n.children[3] == nil
}

// Nearest returns the item closest to p, or ok=false for an empty tree.
func (t *QuadTree) Nearest(p geom.Point) (Item, bool) {
	if t.root == nil {
		return Item{}, false
	}
	var best Item
	bestD := -1.0
	quadNearest(t.root, p, &best, &bestD)
	return best, bestD >= 0
}

func quadNearest(n *quadNode, p geom.Point, best *Item, bestD *float64) {
	if n == nil {
		return
	}
	if *bestD >= 0 && rectDist2(n.bounds, p) > *bestD {
		return
	}
	if n.items != nil || isQuadLeaf(n) {
		for _, it := range n.items {
			if d := it.P.Dist2(p); *bestD < 0 || d < *bestD {
				*bestD = d
				*best = it
			}
		}
		return
	}
	// Visit children nearest-first for better pruning.
	type cd struct {
		c *quadNode
		d float64
	}
	var order [4]cd
	cnt := 0
	for _, c := range n.children {
		if c != nil {
			order[cnt] = cd{c, rectDist2(c.bounds, p)}
			cnt++
		}
	}
	for i := 0; i < cnt; i++ {
		for j := i + 1; j < cnt; j++ {
			if order[j].d < order[i].d {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for i := 0; i < cnt; i++ {
		quadNearest(order[i].c, p, best, bestD)
	}
}

// Leaves returns the leaf-level partition of the indexed items — the
// partition used by QuadTree sampling (§4.3).
func (t *QuadTree) Leaves() [][]Item {
	var out [][]Item
	var walk func(n *quadNode)
	walk = func(n *quadNode) {
		if n == nil {
			return
		}
		if n.items != nil || isQuadLeaf(n) {
			if len(n.items) > 0 {
				leaf := make([]Item, len(n.items))
				copy(leaf, n.items)
				out = append(out, leaf)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Depth returns the maximum depth of the tree (0 for a single leaf or an
// empty tree).
func (t *QuadTree) Depth() int {
	var depth func(n *quadNode) int
	depth = func(n *quadNode) int {
		if n == nil || n.items != nil || isQuadLeaf(n) {
			return 0
		}
		d := 0
		for _, c := range n.children {
			if cd := depth(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	return depth(t.root)
}
