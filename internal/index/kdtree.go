// Package index provides the hierarchical spatial indexes the framework
// uses as substrates: a 2-d kd-tree and a point-region QuadTree. Both
// support range queries, nearest-neighbour lookup, and the leaf-level
// partitioning that drives the paper's hierarchical space-partition
// sampling (§4.3) — recursively splitting until every leaf holds at most
// a target number of points, then drawing one representative per leaf.
package index

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Item is a point payload: a caller-assigned ID at a location.
type Item struct {
	ID int
	P  geom.Point
}

// KDTree is a static 2-d tree over a set of items, built once by
// median splitting (alternating axes).
type KDTree struct {
	items []Item // reordered into tree layout
	nodes []kdNode
	root  int
}

type kdNode struct {
	// item index span [lo, hi) in items; split at mid.
	lo, hi      int
	mid         int
	axis        byte // 0 = X, 1 = Y
	left, right int  // node indices, -1 for leaf children
	bounds      geom.Rect
}

// BuildKDTree constructs a kd-tree over items (copied; the input is not
// modified). An empty input yields an empty tree.
func BuildKDTree(items []Item) *KDTree {
	t := &KDTree{items: make([]Item, len(items)), root: -1}
	copy(t.items, items)
	if len(items) > 0 {
		t.root = t.build(0, len(t.items), 0)
	}
	return t
}

func (t *KDTree) build(lo, hi int, depth int) int {
	axis := byte(depth % 2)
	span := t.items[lo:hi]
	mid := lo + (hi-lo)/2
	nthElement(span, (hi-lo)/2, axis)
	pts := make([]geom.Point, hi-lo)
	for i, it := range span {
		pts[i] = it.P
	}
	n := kdNode{lo: lo, hi: hi, mid: mid, axis: axis, left: -1, right: -1,
		bounds: geom.BoundingRect(pts)}
	idx := len(t.nodes)
	t.nodes = append(t.nodes, n)
	if mid-lo > 0 {
		l := t.build(lo, mid, depth+1)
		t.nodes[idx].left = l
	}
	if hi-(mid+1) > 0 {
		r := t.build(mid+1, hi, depth+1)
		t.nodes[idx].right = r
	}
	return idx
}

// nthElement partially sorts span so that span[k] is the k-th smallest by
// the given axis (a simple quickselect).
func nthElement(span []Item, k int, axis byte) {
	key := func(it Item) float64 {
		if axis == 0 {
			return it.P.X
		}
		return it.P.Y
	}
	lo, hi := 0, len(span)-1
	for lo < hi {
		pivot := key(span[(lo+hi)/2])
		i, j := lo, hi
		for i <= j {
			for key(span[i]) < pivot {
				i++
			}
			for key(span[j]) > pivot {
				j--
			}
			if i <= j {
				span[i], span[j] = span[j], span[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed items.
func (t *KDTree) Len() int { return len(t.items) }

// Range appends every item inside r to dst and returns it.
func (t *KDTree) Range(r geom.Rect, dst []Item) []Item {
	if t.root < 0 {
		return dst
	}
	return t.rangeNode(t.root, r, dst)
}

func (t *KDTree) rangeNode(ni int, r geom.Rect, dst []Item) []Item {
	n := &t.nodes[ni]
	if !r.Intersects(n.bounds) {
		return dst
	}
	if r.ContainsRect(n.bounds) {
		return append(dst, t.items[n.lo:n.hi]...)
	}
	if it := t.items[n.mid]; r.Contains(it.P) {
		dst = append(dst, it)
	}
	if n.left >= 0 {
		dst = t.rangeNode(n.left, r, dst)
	}
	if n.right >= 0 {
		dst = t.rangeNode(n.right, r, dst)
	}
	return dst
}

// Nearest returns the item closest to p and its squared distance. The
// second result is false for an empty tree.
func (t *KDTree) Nearest(p geom.Point) (Item, bool) {
	if t.root < 0 {
		return Item{}, false
	}
	best := Item{}
	bestD := math.Inf(1)
	t.nearestNode(t.root, p, &best, &bestD)
	return best, true
}

func (t *KDTree) nearestNode(ni int, p geom.Point, best *Item, bestD *float64) {
	n := &t.nodes[ni]
	if rectDist2(n.bounds, p) > *bestD {
		return
	}
	it := t.items[n.mid]
	if d := it.P.Dist2(p); d < *bestD {
		*bestD = d
		*best = it
	}
	// Visit the child on p's side first.
	var first, second int
	var onLeft bool
	if n.axis == 0 {
		onLeft = p.X < it.P.X
	} else {
		onLeft = p.Y < it.P.Y
	}
	if onLeft {
		first, second = n.left, n.right
	} else {
		first, second = n.right, n.left
	}
	if first >= 0 {
		t.nearestNode(first, p, best, bestD)
	}
	if second >= 0 {
		t.nearestNode(second, p, best, bestD)
	}
}

// KNearest returns the k items closest to p, ordered nearest first.
func (t *KDTree) KNearest(p geom.Point, k int) []Item {
	if t.root < 0 || k <= 0 {
		return nil
	}
	h := &nnHeap{}
	t.knnNode(t.root, p, k, h)
	out := make([]Item, len(h.items))
	for i := range out {
		out[i] = h.items[i].it
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P.Dist2(p) < out[j].P.Dist2(p) })
	return out
}

type nnEntry struct {
	it Item
	d  float64
}

// nnHeap is a max-heap on distance holding the current k best.
type nnHeap struct {
	items []nnEntry
}

func (h *nnHeap) worst() float64 {
	if len(h.items) == 0 {
		return math.Inf(1)
	}
	return h.items[0].d
}

func (h *nnHeap) push(e nnEntry, k int) {
	if len(h.items) < k {
		h.items = append(h.items, e)
		h.up(len(h.items) - 1)
		return
	}
	if e.d >= h.items[0].d {
		return
	}
	h.items[0] = e
	h.down(0)
}

func (h *nnHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d >= h.items[i].d {
			return
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *nnHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.items) && h.items[l].d > h.items[big].d {
			big = l
		}
		if r < len(h.items) && h.items[r].d > h.items[big].d {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

func (t *KDTree) knnNode(ni int, p geom.Point, k int, h *nnHeap) {
	n := &t.nodes[ni]
	if len(h.items) == k && rectDist2(n.bounds, p) > h.worst() {
		return
	}
	it := t.items[n.mid]
	h.push(nnEntry{it: it, d: it.P.Dist2(p)}, k)
	var first, second int
	var onLeft bool
	if n.axis == 0 {
		onLeft = p.X < it.P.X
	} else {
		onLeft = p.Y < it.P.Y
	}
	if onLeft {
		first, second = n.left, n.right
	} else {
		first, second = n.right, n.left
	}
	if first >= 0 {
		t.knnNode(first, p, k, h)
	}
	if second >= 0 {
		t.knnNode(second, p, k, h)
	}
}

// Leaves partitions the indexed items into groups of at most maxLeaf
// points by descending the kd-tree — the partition used by kd-tree
// sampling (§4.3).
func (t *KDTree) Leaves(maxLeaf int) [][]Item {
	if t.root < 0 {
		return nil
	}
	if maxLeaf < 1 {
		maxLeaf = 1
	}
	var out [][]Item
	var walk func(ni int)
	walk = func(ni int) {
		n := &t.nodes[ni]
		if n.hi-n.lo <= maxLeaf {
			leaf := make([]Item, n.hi-n.lo)
			copy(leaf, t.items[n.lo:n.hi])
			out = append(out, leaf)
			return
		}
		// The median item travels with the smaller side to keep groups
		// contiguous: emit it with the left child.
		if n.left >= 0 {
			walk(n.left)
		}
		out[len(out)-1] = append(out[len(out)-1], t.items[n.mid])
		if n.right >= 0 {
			walk(n.right)
		}
	}
	walk(t.root)
	return out
}

// rectDist2 returns the squared distance from p to the nearest point of r
// (0 when p is inside r).
func rectDist2(r geom.Rect, p geom.Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return dx*dx + dy*dy
}
