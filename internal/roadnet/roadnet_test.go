package roadnet

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/planar"
)

func TestGridCity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, err := GridCity(DefaultGridOpts(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Star.Connected() {
		t.Fatal("mobility graph disconnected")
	}
	if err := w.Star.CheckEuler(w.Dual.FS); err != nil {
		t.Fatal(err)
	}
	if w.NumSensors() != len(w.Dual.FS.Faces)-1 {
		t.Errorf("sensors = %d, faces-1 = %d", w.NumSensors(), len(w.Dual.FS.Faces)-1)
	}
	if len(w.Gateways) < 4 {
		t.Errorf("gateways = %d, want several", len(w.Gateways))
	}
	// Gateways must lie on the domain boundary region (outer face walk).
	b := w.Bounds()
	for _, g := range w.Gateways {
		p := w.Star.Point(g)
		if !b.Contains(p) {
			t.Errorf("gateway %d at %v outside bounds", g, p)
		}
	}
}

func TestGridCityValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GridCity(GridOpts{NX: 1, NY: 5, Spacing: 10}, rng); err == nil {
		t.Error("1-wide grid accepted")
	}
	if _, err := GridCity(GridOpts{NX: 4, NY: 4, Spacing: 10, Jitter: 0.9}, rng); err == nil {
		t.Error("excessive jitter accepted")
	}
}

func TestRadialCity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w, err := RadialCity(RadialOpts{Rings: 5, Spokes: 10, RingGap: 50, SkipFrac: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Star.Connected() {
		t.Fatal("disconnected")
	}
	if err := w.Star.CheckEuler(w.Dual.FS); err != nil {
		t.Fatal(err)
	}
	// Outer ring intact: gateways = spokes.
	if len(w.Gateways) != 10 {
		t.Errorf("gateways = %d, want 10", len(w.Gateways))
	}
}

func TestRadialCityValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := RadialCity(RadialOpts{Rings: 0, Spokes: 8, RingGap: 10}, rng); err == nil {
		t.Error("0 rings accepted")
	}
	if _, err := RadialCity(RadialOpts{Rings: 3, Spokes: 2, RingGap: 10}, rng); err == nil {
		t.Error("2 spokes accepted")
	}
}

func TestRandomCity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := RandomCity(RandomOpts{N: 120, Size: 1000, RemoveFrac: 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Star.Connected() {
		t.Fatal("disconnected")
	}
	if err := w.Star.CheckEuler(w.Dual.FS); err != nil {
		t.Fatal(err)
	}
	if w.NumJunctions() != 120 {
		t.Errorf("junctions = %d, want 120", w.NumJunctions())
	}
}

func TestJunctionsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w, err := GridCity(GridOpts{NX: 8, NY: 8, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := w.JunctionsIn(w.Bounds())
	if len(all) != w.NumJunctions() {
		t.Errorf("full-domain query = %d, want %d", len(all), w.NumJunctions())
	}
	none := w.JunctionsIn(w.Bounds().Expand(10000).Intersect(w.Bounds().Expand(-10000)))
	if len(none) != 0 {
		t.Errorf("empty-rect query = %d, want 0", len(none))
	}
	// A quarter rect holds roughly a quarter of the junctions.
	b := w.Bounds()
	quarter := w.JunctionsIn(planarRect(b.Min.X, b.Min.Y, b.Width()/2, b.Height()/2))
	if len(quarter) < 9 || len(quarter) > 30 {
		t.Errorf("quarter rect = %d junctions, expected ≈16", len(quarter))
	}
}

// TestRangeQueriesMatchLinearScan: the kd-tree-backed JunctionsIn and
// SensorsIn must return exactly the nodes (and the ascending order) the
// pre-index linear scans produced, across random rects including
// degenerate and out-of-bounds ones.
func TestRangeQueriesMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, build := range []func() (*World, error){
		func() (*World, error) {
			return GridCity(GridOpts{NX: 12, NY: 10, Spacing: 25, Jitter: 0.3, RemoveFrac: 0.2, CurveFrac: 0.2}, rng)
		},
		func() (*World, error) {
			return RandomCity(RandomOpts{N: 80, Size: 500, RemoveFrac: 0.2}, rng)
		},
	} {
		w, err := build()
		if err != nil {
			t.Fatal(err)
		}
		b := w.Bounds()
		rects := []geom.Rect{
			b,
			b.Expand(100),
			planarRect(b.Min.X-50, b.Min.Y-50, 10, 10), // fully outside
			planarRect(b.Center().X, b.Center().Y, 0, 0),
		}
		for i := 0; i < 40; i++ {
			rects = append(rects, planarRect(
				b.Min.X+rng.Float64()*b.Width(),
				b.Min.Y+rng.Float64()*b.Height(),
				rng.Float64()*b.Width(), rng.Float64()*b.Height()))
		}
		for _, rect := range rects {
			gotJ := w.JunctionsIn(rect)
			var wantJ []planar.NodeID
			for n := 0; n < w.Star.NumNodes(); n++ {
				if rect.Contains(w.Star.Point(planar.NodeID(n))) {
					wantJ = append(wantJ, planar.NodeID(n))
				}
			}
			if !equalIDs(gotJ, wantJ) {
				t.Fatalf("JunctionsIn(%v) = %v, linear scan = %v", rect, gotJ, wantJ)
			}
			gotS := w.SensorsIn(rect)
			var wantS []planar.NodeID
			for n := 0; n < w.Dual.G.NumNodes(); n++ {
				if planar.NodeID(n) == w.Dual.OuterNode {
					continue
				}
				if rect.Contains(w.Dual.G.Point(planar.NodeID(n))) {
					wantS = append(wantS, planar.NodeID(n))
				}
			}
			if !equalIDs(gotS, wantS) {
				t.Fatalf("SensorsIn(%v) = %v, linear scan = %v", rect, gotS, wantS)
			}
		}
	}
}

func equalIDs(a, b []planar.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSensorsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, err := GridCity(GridOpts{NX: 6, NY: 6, Spacing: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	all := w.SensorsIn(w.Bounds())
	if len(all) != w.NumSensors() {
		t.Errorf("sensors in bounds = %d, want all %d", len(all), w.NumSensors())
	}
	for _, s := range all {
		if s == w.Dual.OuterNode {
			t.Error("outer node reported as sensor")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := GridCity(DefaultGridOpts(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GridCity(DefaultGridOpts(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumJunctions() != b.NumJunctions() || a.NumRoads() != b.NumRoads() {
		t.Error("same seed produced different cities")
	}
}

func TestBuildWorldRejectsDisconnected(t *testing.T) {
	g := planarGraph2Islands()
	if _, err := BuildWorld(g); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func planarRect(x, y, w, h float64) geom.Rect {
	return geom.RectWH(x, y, w, h)
}

func planarGraph2Islands() *planar.Graph {
	g := planar.NewGraph(6, 6)
	for i := 0; i < 6; i++ {
		g.AddNode(geom.Pt(float64(i%3)*10+float64(i/3)*100, float64(i%2)*10))
	}
	mustAdd(g, 0, 1)
	mustAdd(g, 1, 2)
	mustAdd(g, 2, 0)
	mustAdd(g, 3, 4)
	mustAdd(g, 4, 5)
	mustAdd(g, 5, 3)
	return g
}

func mustAdd(g *planar.Graph, u, v planar.NodeID) {
	if _, err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
