// Package roadnet provides the mobility-domain substrate: synthetic planar
// road networks standing in for the paper's Beijing OSM graph, the dual
// sensing graph, and the World type that bundles both for the rest of the
// framework.
//
// The paper evaluates on a real city map; this repository substitutes
// generators that produce planar "cities" with the properties the
// algorithms actually consume — irregular faces, curved (subdivided)
// roads, dead space between roads, and boundary gateways through which
// objects enter and leave (the paper's ★v_ext infinity node). See
// DESIGN.md §3 for the substitution rationale.
package roadnet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/planar"
)

// World bundles the mobility graph ★G, its dual sensing graph G, and the
// gateway junctions. It is immutable after construction and safe for
// concurrent readers.
type World struct {
	// Star is the mobility graph ★G: nodes are junctions, edges are
	// roads. Objects move along its edges.
	Star *planar.Graph
	// Dual is the sensing graph G = dual(★G): nodes are sensors (one per
	// city block / ★G face), edges cross roads.
	Dual *planar.Dual
	// Gateways are the junctions on the outer face of ★G; objects enter
	// and leave the world through them (the ★v_ext mechanism).
	Gateways []planar.NodeID
	// junctionIdx and sensorIdx are kd-trees over junction and sensor
	// locations, built once at construction; they back the per-query
	// range lookups of JunctionsIn and SensorsIn.
	junctionIdx *index.KDTree
	sensorIdx   *index.KDTree
}

// BuildWorld derives the dual and gateways from a finished mobility graph.
func BuildWorld(star *planar.Graph) (*World, error) {
	if !star.Connected() {
		return nil, fmt.Errorf("roadnet: mobility graph is not connected")
	}
	d, err := planar.BuildDual(star)
	if err != nil {
		return nil, fmt.Errorf("roadnet: building dual: %w", err)
	}
	outer := &d.FS.Faces[d.FS.Outer()]
	seen := make(map[planar.NodeID]bool)
	var gws []planar.NodeID
	for _, n := range outer.Nodes(star) {
		if !seen[n] {
			seen[n] = true
			gws = append(gws, n)
		}
	}
	w := &World{Star: star, Dual: d, Gateways: gws}
	jItems := make([]index.Item, star.NumNodes())
	for n := range jItems {
		jItems[n] = index.Item{ID: n, P: star.Point(planar.NodeID(n))}
	}
	w.junctionIdx = index.BuildKDTree(jItems)
	var sItems []index.Item
	for n := 0; n < d.G.NumNodes(); n++ {
		if planar.NodeID(n) == d.OuterNode {
			continue
		}
		sItems = append(sItems, index.Item{ID: n, P: d.G.Point(planar.NodeID(n))})
	}
	w.sensorIdx = index.BuildKDTree(sItems)
	return w, nil
}

// NumJunctions returns the number of junctions in the mobility graph.
func (w *World) NumJunctions() int { return w.Star.NumNodes() }

// NumRoads returns the number of roads in the mobility graph.
func (w *World) NumRoads() int { return w.Star.NumEdges() }

// NumSensors returns the number of candidate sensor locations, i.e. dual
// nodes excluding the outer face.
func (w *World) NumSensors() int { return w.Dual.G.NumNodes() - 1 }

// Bounds returns the bounding rectangle of the mobility graph.
func (w *World) Bounds() geom.Rect { return w.Star.Bounds() }

// JunctionsIn returns the junctions whose location lies inside r: the
// paper's query region Q_R expressed as a union of sensing-graph faces
// (one face per junction by vertex–face duality). The lookup descends
// the construction-time kd-tree — O(√n + k) instead of scanning every
// junction — and returns IDs in ascending order, matching the linear
// scan it replaced.
func (w *World) JunctionsIn(r geom.Rect) []planar.NodeID {
	return rangeIDs(w.junctionIdx, r)
}

// SensorsIn returns the sensing-graph nodes (excluding the outer node)
// whose location lies inside r. Used for the flooding cost of centralized
// baselines. Indexed like JunctionsIn.
func (w *World) SensorsIn(r geom.Rect) []planar.NodeID {
	return rangeIDs(w.sensorIdx, r)
}

// rangeIDs runs a kd-tree range query and returns the hit IDs in
// ascending order (the order the pre-index linear scans produced, which
// downstream float accumulations are sensitive to).
func rangeIDs(t *index.KDTree, r geom.Rect) []planar.NodeID {
	items := t.Range(r, nil)
	if len(items) == 0 {
		return nil
	}
	out := make([]planar.NodeID, len(items))
	for i, it := range items {
		out[i] = planar.NodeID(it.ID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GridOpts configures GridCity.
type GridOpts struct {
	// NX, NY are the junction counts per axis (≥ 2 each).
	NX, NY int
	// Spacing is the nominal distance between adjacent junctions.
	Spacing float64
	// Jitter displaces interior junctions by up to Jitter·Spacing in each
	// axis, producing the irregular, non-axis-aligned blocks real cities
	// have. Must be < 0.5 to preserve planarity.
	Jitter float64
	// RemoveFrac removes this fraction of non-boundary, non-bridge roads,
	// creating larger irregular blocks (dead space).
	RemoveFrac float64
	// CurveFrac subdivides this fraction of remaining roads with an
	// offset midpoint, modelling curved roads (degree-2 contour nodes).
	CurveFrac float64
}

// DefaultGridOpts returns the configuration used by the experiment
// harness: a mid-sized irregular city.
func DefaultGridOpts() GridOpts {
	return GridOpts{NX: 24, NY: 24, Spacing: 100, Jitter: 0.30, RemoveFrac: 0.22, CurveFrac: 0.15}
}

// GridCity generates a jittered grid city. The outer boundary ring is
// always kept intact so that the outer face is well defined and gateways
// exist on all sides.
func GridCity(opts GridOpts, rng *rand.Rand) (*World, error) {
	if opts.NX < 2 || opts.NY < 2 {
		return nil, fmt.Errorf("roadnet: grid needs at least 2x2 junctions, got %dx%d", opts.NX, opts.NY)
	}
	if opts.Jitter < 0 || opts.Jitter >= 0.5 {
		return nil, fmt.Errorf("roadnet: jitter %v out of [0, 0.5)", opts.Jitter)
	}
	g := planar.NewGraph(opts.NX*opts.NY, opts.NX*opts.NY*2)
	id := func(x, y int) planar.NodeID { return planar.NodeID(y*opts.NX + x) }
	for y := 0; y < opts.NY; y++ {
		for x := 0; x < opts.NX; x++ {
			px := float64(x) * opts.Spacing
			py := float64(y) * opts.Spacing
			if x > 0 && x < opts.NX-1 && y > 0 && y < opts.NY-1 {
				px += (rng.Float64()*2 - 1) * opts.Jitter * opts.Spacing
				py += (rng.Float64()*2 - 1) * opts.Jitter * opts.Spacing
			}
			g.AddNode(geom.Pt(px, py))
		}
	}
	boundary := func(x, y int) bool {
		return x == 0 || y == 0 || x == opts.NX-1 || y == opts.NY-1
	}
	var cands []cand2
	for y := 0; y < opts.NY; y++ {
		for x := 0; x < opts.NX; x++ {
			if x+1 < opts.NX {
				req := boundary(x, y) && boundary(x+1, y) && (y == 0 || y == opts.NY-1)
				cands = append(cands, cand2{id(x, y), id(x+1, y), req})
			}
			if y+1 < opts.NY {
				req := boundary(x, y) && boundary(x, y+1) && (x == 0 || x == opts.NX-1)
				cands = append(cands, cand2{id(x, y), id(x, y+1), req})
			}
		}
	}
	edges := thinEdges2(g.NumNodes(), cands, opts.RemoveFrac, rng)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	g, err := curveRoads(g, opts.CurveFrac, opts.Spacing*0.18, rng)
	if err != nil {
		return nil, err
	}
	return BuildWorld(g)
}

// RadialOpts configures RadialCity.
type RadialOpts struct {
	// Rings is the number of concentric rings (≥ 1).
	Rings int
	// Spokes is the number of radial roads (≥ 3).
	Spokes int
	// RingGap is the radial distance between consecutive rings.
	RingGap float64
	// SkipFrac removes this fraction of interior ring segments and
	// spokes (the outermost ring is kept intact).
	SkipFrac float64
}

// RadialCity generates a ring-and-spoke city (a common European layout):
// concentric rings crossed by radial roads, with a centre junction.
func RadialCity(opts RadialOpts, rng *rand.Rand) (*World, error) {
	if opts.Rings < 1 || opts.Spokes < 3 {
		return nil, fmt.Errorf("roadnet: radial city needs ≥1 ring and ≥3 spokes")
	}
	g := planar.NewGraph(opts.Rings*opts.Spokes+1, opts.Rings*opts.Spokes*2)
	center := g.AddNode(geom.Pt(0, 0))
	id := make([][]planar.NodeID, opts.Rings)
	for r := 0; r < opts.Rings; r++ {
		id[r] = make([]planar.NodeID, opts.Spokes)
		rad := float64(r+1) * opts.RingGap
		for s := 0; s < opts.Spokes; s++ {
			th := 2 * math.Pi * float64(s) / float64(opts.Spokes)
			id[r][s] = g.AddNode(geom.Pt(rad*math.Cos(th), rad*math.Sin(th)))
		}
	}
	var cands []cand2
	for s := 0; s < opts.Spokes; s++ {
		cands = append(cands, cand2{center, id[0][s], false})
		for r := 0; r+1 < opts.Rings; r++ {
			cands = append(cands, cand2{id[r][s], id[r+1][s], false})
		}
	}
	for r := 0; r < opts.Rings; r++ {
		for s := 0; s < opts.Spokes; s++ {
			// Outermost ring is required so the outer face is the ring.
			cands = append(cands, cand2{id[r][s], id[r][(s+1)%opts.Spokes], r == opts.Rings-1})
		}
	}
	edges := thinEdges2(g.NumNodes(), cands, opts.SkipFrac, rng)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return BuildWorld(g)
}

// RandomOpts configures RandomCity.
type RandomOpts struct {
	// N is the number of junctions.
	N int
	// Size is the side length of the square domain.
	Size float64
	// RemoveFrac thins this fraction of non-hull Delaunay edges.
	RemoveFrac float64
}

// RandomCity generates a city from a Delaunay triangulation of random
// junctions, thinned to road density. Hull edges are kept so the boundary
// is a cycle.
func RandomCity(opts RandomOpts, rng *rand.Rand) (*World, error) {
	if opts.N < 4 {
		return nil, fmt.Errorf("roadnet: random city needs ≥4 junctions, got %d", opts.N)
	}
	pts := make([]geom.Point, opts.N)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*opts.Size, rng.Float64()*opts.Size)
	}
	tris, err := delaunay.Triangulate(pts)
	if err != nil {
		return nil, fmt.Errorf("roadnet: triangulating junctions: %w", err)
	}
	hull := geom.ConvexHull(pts)
	onHull := make(map[[2]int64]bool, len(hull))
	key := func(p geom.Point) [2]int64 {
		return [2]int64{int64(math.Round(p.X * 1e6)), int64(math.Round(p.Y * 1e6))}
	}
	for _, h := range hull {
		onHull[key(h)] = true
	}
	g := planar.NewGraph(opts.N, opts.N*3)
	for _, p := range pts {
		g.AddNode(p)
	}
	var cands []cand2
	for _, e := range delaunay.Edges(tris) {
		req := onHull[key(pts[e.U])] && onHull[key(pts[e.V])]
		cands = append(cands, cand2{planar.NodeID(e.U), planar.NodeID(e.V), req})
	}
	edges := thinEdges2(opts.N, cands, opts.RemoveFrac, rng)
	for _, e := range edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return BuildWorld(g)
}

// cand2 is a candidate road: required roads survive thinning.
type cand2 struct {
	u, v     planar.NodeID
	required bool
}

// thinEdges2 keeps all required edges plus a random spanning tree, then
// retains each remaining candidate with probability 1−removeFrac. The
// result is always connected.
func thinEdges2(n int, cands []cand2, removeFrac float64, rng *rand.Rand) [][2]planar.NodeID {
	uf := newUnionFind(n)
	keep := make([]bool, len(cands))
	// Pass 1: required edges.
	for i, c := range cands {
		if c.required {
			keep[i] = true
			uf.union(int(c.u), int(c.v))
		}
	}
	// Pass 2: spanning tree over the rest, in random order.
	order := rng.Perm(len(cands))
	for _, i := range order {
		c := cands[i]
		if keep[i] {
			continue
		}
		if uf.union(int(c.u), int(c.v)) {
			keep[i] = true
		}
	}
	// Pass 3: keep leftover edges with probability 1−removeFrac.
	var out [][2]planar.NodeID
	for i, c := range cands {
		if keep[i] || rng.Float64() >= removeFrac {
			out = append(out, [2]planar.NodeID{c.u, c.v})
		}
	}
	return out
}

// curveRoads subdivides a fraction of edges with a perpendicular-offset
// midpoint, modelling curved roads. The offset is small relative to
// spacing so planarity is preserved; the final graph is validated by the
// caller through BuildWorld's face extraction.
func curveRoads(g *planar.Graph, frac, offset float64, rng *rand.Rand) (*planar.Graph, error) {
	if frac <= 0 {
		return g, nil
	}
	ng := planar.NewGraph(g.NumNodes()*2, g.NumEdges()*2)
	for n := 0; n < g.NumNodes(); n++ {
		ng.AddNode(g.Point(planar.NodeID(n)))
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(planar.EdgeID(ei))
		if rng.Float64() >= frac {
			if _, err := ng.AddEdge(e.U, e.V); err != nil {
				return nil, err
			}
			continue
		}
		a, b := g.Point(e.U), g.Point(e.V)
		mid := a.Lerp(b, 0.5)
		dir := b.Sub(a)
		l := dir.Norm()
		if l <= geom.Eps {
			continue
		}
		perp := geom.Pt(-dir.Y/l, dir.X/l)
		sign := 1.0
		if rng.Intn(2) == 0 {
			sign = -1
		}
		m := ng.AddNode(mid.Add(perp.Scale(sign * offset)))
		if _, err := ng.AddEdge(e.U, m); err != nil {
			return nil, err
		}
		if _, err := ng.AddEdge(m, e.V); err != nil {
			return nil, err
		}
	}
	return ng, nil
}

// unionFind is a standard disjoint-set forest with path halving.
type unionFind struct {
	parent []int
	rank   []byte
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]byte, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
