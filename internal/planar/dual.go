package planar

import (
	"fmt"

	"repro/internal/geom"
)

// Dual is the dual graph of an embedded planar graph: one node per face of
// the primal (including the outer face) and one edge per primal edge,
// connecting the two faces it separates. It is the paper's sensing graph
// G when the primal is the mobility graph ★G.
type Dual struct {
	// G is the dual graph itself. Node i of G corresponds to primal face
	// FaceID(i); dual node positions are face centroids (outer face: a
	// point outside the primal bounding box).
	G *Graph
	// Primal is the graph the dual was built from.
	Primal *Graph
	// FS is the primal face set.
	FS *FaceSet
	// EdgeOf[pe] is the dual edge crossing primal edge pe, or NoEdge for
	// primal bridges (both sides the same face).
	EdgeOf []EdgeID
	// PrimalEdge[de] is the primal edge crossed by dual edge de.
	PrimalEdge []EdgeID
	// OuterNode is the dual node of the primal outer face.
	OuterNode NodeID
}

// BuildDual constructs the dual of g. The graph must be connected with at
// least one face. Bridges in the primal produce no dual edge (the face is
// the same on both sides); the paper's road networks are bridgeless after
// planarization, and the generators guarantee 2-edge-connectivity, but the
// construction tolerates bridges for robustness.
func BuildDual(g *Graph) (*Dual, error) {
	fs, err := g.Faces()
	if err != nil {
		return nil, err
	}
	d := &Dual{
		G:      NewGraph(len(fs.Faces), g.NumEdges()),
		Primal: g,
		FS:     fs,
		EdgeOf: make([]EdgeID, g.NumEdges()),
	}
	bounds := g.Bounds()
	for i := range fs.Faces {
		f := &fs.Faces[i]
		var p geom.Point
		if f.Outer {
			// Place the outer-face node outside the domain so plots and
			// nearest-node lookups never confuse it with a real sensor.
			p = geom.Pt(bounds.Min.X-bounds.Width()*0.25, bounds.Min.Y-bounds.Height()*0.25)
			d.OuterNode = NodeID(i)
		} else {
			p = f.Polygon(g).Centroid()
		}
		d.G.AddNode(p)
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		fu, fv := fs.SidesOf(EdgeID(ei))
		if fu == fv {
			d.EdgeOf[ei] = NoEdge // bridge
			continue
		}
		de, err := d.G.AddEdge(NodeID(fu), NodeID(fv))
		if err != nil {
			return nil, fmt.Errorf("planar: dual edge for primal edge %d: %w", ei, err)
		}
		d.EdgeOf[ei] = de
		d.PrimalEdge = append(d.PrimalEdge, EdgeID(ei))
	}
	return d, nil
}

// FaceOfDualNode returns the primal face corresponding to dual node n.
func (d *Dual) FaceOfDualNode(n NodeID) FaceID { return FaceID(n) }

// DualNodeOfFace returns the dual node corresponding to primal face f.
func (d *Dual) DualNodeOfFace(f FaceID) NodeID { return NodeID(f) }

// CrossedBy returns the primal edge crossed by dual edge de.
func (d *Dual) CrossedBy(de EdgeID) EdgeID { return d.PrimalEdge[de] }

// InteriorNodes returns the dual nodes excluding the outer-face node, i.e.
// the candidate sensor locations of the paper.
func (d *Dual) InteriorNodes() []NodeID {
	out := make([]NodeID, 0, d.G.NumNodes()-1)
	for n := 0; n < d.G.NumNodes(); n++ {
		if NodeID(n) != d.OuterNode {
			out = append(out, NodeID(n))
		}
	}
	return out
}
