package planar

import (
	"container/heap"
	"math"
)

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPaths holds single-source shortest-path results over a Graph.
type ShortestPaths struct {
	Source NodeID
	// Dist[n] is the shortest distance from Source to n, +Inf when
	// unreachable.
	Dist []float64
	// PrevEdge[n] is the edge used to reach n on a shortest path, NoEdge
	// for the source and unreachable nodes.
	PrevEdge []EdgeID
	g        *Graph
}

// Dijkstra computes shortest paths from src using edge weights. Weights
// must be non-negative (they are Euclidean lengths everywhere in this
// repository).
func Dijkstra(g *Graph, src NodeID) *ShortestPaths {
	n := g.NumNodes()
	sp := &ShortestPaths{
		Source:   src,
		Dist:     make([]float64, n),
		PrevEdge: make([]EdgeID, n),
		g:        g,
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.PrevEdge[i] = NoEdge
	}
	sp.Dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > sp.Dist[it.node] {
			continue // stale entry
		}
		for _, e := range g.Incident(it.node) {
			ed := g.Edge(e)
			o := ed.Other(it.node)
			nd := it.dist + ed.Weight
			if nd < sp.Dist[o] {
				sp.Dist[o] = nd
				sp.PrevEdge[o] = e
				heap.Push(q, pqItem{node: o, dist: nd})
			}
		}
	}
	return sp
}

// DijkstraTo runs Dijkstra from src but stops as soon as dst is settled,
// returning the node path (src..dst inclusive) and the edge path, or
// ok=false when dst is unreachable.
func DijkstraTo(g *Graph, src, dst NodeID) (nodes []NodeID, edges []EdgeID, ok bool) {
	if src == dst {
		return []NodeID{src}, nil, true
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	prev := make([]EdgeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = NoEdge
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == dst {
			break
		}
		for _, e := range g.Incident(it.node) {
			ed := g.Edge(e)
			o := ed.Other(it.node)
			nd := it.dist + ed.Weight
			if nd < dist[o] {
				dist[o] = nd
				prev[o] = e
				heap.Push(q, pqItem{node: o, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, nil, false
	}
	// Reconstruct backwards.
	for at := dst; at != src; {
		e := prev[at]
		edges = append(edges, e)
		nodes = append(nodes, at)
		at = g.Edge(e).Other(at)
	}
	nodes = append(nodes, src)
	reverseNodes(nodes)
	reverseEdges(edges)
	return nodes, edges, true
}

// PathTo reconstructs the node and edge path from the source to dst, or
// ok=false when unreachable.
func (sp *ShortestPaths) PathTo(dst NodeID) (nodes []NodeID, edges []EdgeID, ok bool) {
	if math.IsInf(sp.Dist[dst], 1) {
		return nil, nil, false
	}
	for at := dst; at != sp.Source; {
		e := sp.PrevEdge[at]
		edges = append(edges, e)
		nodes = append(nodes, at)
		at = sp.g.Edge(e).Other(at)
	}
	nodes = append(nodes, sp.Source)
	reverseNodes(nodes)
	reverseEdges(edges)
	return nodes, edges, true
}

func reverseNodes(s []NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

func reverseEdges(s []EdgeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// BFSHops returns the minimum hop count from src to every node, -1 when
// unreachable. Used by the network simulator where per-hop cost is
// uniform.
func BFSHops(g *Graph, src NodeID) []int {
	hops := make([]int, g.NumNodes())
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Incident(n) {
			o := g.Edge(e).Other(n)
			if hops[o] < 0 {
				hops[o] = hops[n] + 1
				queue = append(queue, o)
			}
		}
	}
	return hops
}

// AvgShortestPathLength estimates the mean shortest-path length (in hops)
// of g by running BFS from up to sampleSources evenly spaced sources.
// It implements the ℓ_G quantity of the paper's cost model (§4.9).
func AvgShortestPathLength(g *Graph, sampleSources int) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if sampleSources <= 0 || sampleSources > n {
		sampleSources = n
	}
	step := n / sampleSources
	if step == 0 {
		step = 1
	}
	var total float64
	var count int
	for s := 0; s < n; s += step {
		hops := BFSHops(g, NodeID(s))
		for _, h := range hops {
			if h > 0 {
				total += float64(h)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
