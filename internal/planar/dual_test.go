package planar

import (
	"testing"

	"repro/internal/geom"
)

func TestDualOfGrid(t *testing.T) {
	g := buildGrid(t, 4, 4)
	d, err := BuildDual(g)
	if err != nil {
		t.Fatal(err)
	}
	// Dual nodes = faces = 9 interior + 1 outer.
	if d.G.NumNodes() != 10 {
		t.Errorf("dual nodes = %d, want 10", d.G.NumNodes())
	}
	// Dual edges = primal edges (no bridges in a grid).
	if d.G.NumEdges() != g.NumEdges() {
		t.Errorf("dual edges = %d, want %d", d.G.NumEdges(), g.NumEdges())
	}
	if !d.G.Connected() {
		t.Error("dual not connected")
	}
	// Round trip: dual edge ↔ primal edge.
	for pe := 0; pe < g.NumEdges(); pe++ {
		de := d.EdgeOf[pe]
		if de == NoEdge {
			t.Fatalf("primal edge %d has no dual (bridge in a grid?)", pe)
		}
		if got := d.CrossedBy(de); got != EdgeID(pe) {
			t.Errorf("CrossedBy(%d) = %d, want %d", de, got, pe)
		}
	}
	// The outer node is placed outside the primal bounds.
	if g.Bounds().Contains(d.G.Point(d.OuterNode)) {
		t.Error("outer dual node placed inside the domain")
	}
	// Interior dual nodes sit inside the primal bounds (centroids).
	for _, n := range d.InteriorNodes() {
		if !g.Bounds().Contains(d.G.Point(n)) {
			t.Errorf("interior dual node %d outside bounds", n)
		}
	}
	if len(d.InteriorNodes()) != 9 {
		t.Errorf("interior nodes = %d, want 9", len(d.InteriorNodes()))
	}
}

func TestDualWithBridge(t *testing.T) {
	// Two triangles joined by a bridge edge: the bridge has no dual edge.
	g := NewGraph(6, 7)
	a := g.AddNode(geom.Pt(0, 0))
	b := g.AddNode(geom.Pt(1, 0))
	c := g.AddNode(geom.Pt(0.5, 1))
	d1 := g.AddNode(geom.Pt(3, 0))
	e := g.AddNode(geom.Pt(4, 0))
	f := g.AddNode(geom.Pt(3.5, 1))
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, c, a)
	bridge := mustEdge(t, g, b, d1)
	mustEdge(t, g, d1, e)
	mustEdge(t, g, e, f)
	mustEdge(t, g, f, d1)
	d, err := BuildDual(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.EdgeOf[bridge] != NoEdge {
		t.Error("bridge got a dual edge")
	}
	// Faces: 2 triangles + outer = 3 dual nodes; dual edges = 6.
	if d.G.NumNodes() != 3 {
		t.Errorf("dual nodes = %d, want 3", d.G.NumNodes())
	}
	if d.G.NumEdges() != 6 {
		t.Errorf("dual edges = %d, want 6", d.G.NumEdges())
	}
}

func TestDualEdgeConnectsFlankingFaces(t *testing.T) {
	g := buildGrid(t, 3, 3)
	d, err := BuildDual(g)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < g.NumEdges(); pe++ {
		de := d.EdgeOf[pe]
		fu, fv := d.FS.SidesOf(EdgeID(pe))
		ed := d.G.Edge(de)
		got := map[NodeID]bool{ed.U: true, ed.V: true}
		if !got[NodeID(fu)] || !got[NodeID(fv)] {
			t.Errorf("dual edge %d connects %v, want faces %d,%d", de, ed, fu, fv)
		}
	}
}
