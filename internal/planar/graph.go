// Package planar implements embedded planar graphs and the operations the
// framework needs from them: face extraction via the rotation system
// (half-edge walking), dual-graph construction, shortest paths, and
// planarization of raw segment sets.
//
// Graphs are node/edge indexed by dense integer IDs so that downstream
// packages can use slices rather than maps in hot paths.
package planar

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// NodeID identifies a node within a Graph.
type NodeID int

// EdgeID identifies an undirected edge within a Graph.
type EdgeID int

// FaceID identifies a face produced by Graph.Faces.
type FaceID int

// Invalid sentinel IDs.
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
	NoFace FaceID = -1
)

// Edge is an undirected edge between two nodes. U < V is not required;
// the pair is stored as given at AddEdge time.
type Edge struct {
	U, V NodeID
	// Weight is the traversal cost of the edge. NewGraph-created edges
	// default to the Euclidean distance between the endpoints.
	Weight float64
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint, which always indicates a programming error in the caller.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("planar: node %d is not an endpoint of edge %v", n, e))
}

// Graph is an embedded undirected planar graph. The embedding is given by
// node coordinates; edges are assumed to be straight segments that only
// intersect at shared endpoints (use Planarize to establish this).
type Graph struct {
	pts   []geom.Point
	edges []Edge
	// adj[n] lists the edges incident to node n.
	adj [][]EdgeID
	// rot[n] lists incident edges sorted counter-clockwise by angle;
	// built lazily by ensureRotation.
	rot    [][]EdgeID
	rotMap []map[EdgeID]int // position of each edge within rot[n]
}

// NewGraph returns an empty graph with capacity hints for n nodes and m
// edges.
func NewGraph(n, m int) *Graph {
	return &Graph{
		pts:   make([]geom.Point, 0, n),
		edges: make([]Edge, 0, m),
		adj:   make([][]EdgeID, 0, n),
	}
}

// AddNode appends a node at p and returns its ID.
func (g *Graph) AddNode(p geom.Point) NodeID {
	g.pts = append(g.pts, p)
	g.adj = append(g.adj, nil)
	g.invalidate()
	return NodeID(len(g.pts) - 1)
}

// AddEdge appends an undirected edge between u and v weighted by their
// Euclidean distance, and returns its ID. Self loops are rejected with an
// error because face extraction does not support them.
func (g *Graph) AddEdge(u, v NodeID) (EdgeID, error) {
	if u < 0 || v < 0 || int(u) >= len(g.pts) || int(v) >= len(g.pts) {
		return NoEdge, fmt.Errorf("planar: edge (%d,%d) references missing node", u, v)
	}
	return g.AddWeightedEdge(u, v, g.pts[u].Dist(g.pts[v]))
}

// AddWeightedEdge is AddEdge with an explicit traversal cost.
func (g *Graph) AddWeightedEdge(u, v NodeID, w float64) (EdgeID, error) {
	if u == v {
		return NoEdge, fmt.Errorf("planar: self loop on node %d", u)
	}
	if int(u) >= len(g.pts) || int(v) >= len(g.pts) || u < 0 || v < 0 {
		return NoEdge, fmt.Errorf("planar: edge (%d,%d) references missing node", u, v)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: w})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id)
	g.invalidate()
	return id, nil
}

func (g *Graph) invalidate() {
	g.rot = nil
	g.rotMap = nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.pts) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Point returns the embedding location of node n.
func (g *Graph) Point(n NodeID) geom.Point { return g.pts[n] }

// Points returns the node coordinate slice. The caller must not modify it.
func (g *Graph) Points() []geom.Point { return g.pts }

// Edge returns the endpoints and weight of edge e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Edges returns the edge slice. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Incident returns the edges incident to n. The caller must not modify
// the returned slice.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.adj[n] }

// Degree returns the number of edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// Neighbors appends the nodes adjacent to n to dst and returns it.
func (g *Graph) Neighbors(n NodeID, dst []NodeID) []NodeID {
	for _, e := range g.adj[n] {
		dst = append(dst, g.edges[e].Other(n))
	}
	return dst
}

// FindEdge returns the edge connecting u and v, or NoEdge.
func (g *Graph) FindEdge(u, v NodeID) EdgeID {
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, e := range g.adj[u] {
		if g.edges[e].Other(u) == v {
			return e
		}
	}
	return NoEdge
}

// Bounds returns the bounding rectangle of the embedding.
func (g *Graph) Bounds() geom.Rect { return geom.BoundingRect(g.pts) }

// ensureRotation builds, for every node, its incident edges sorted CCW by
// the angle of the outgoing direction. This is the rotation system used by
// face extraction.
func (g *Graph) ensureRotation() {
	if g.rot != nil {
		return
	}
	g.rot = make([][]EdgeID, len(g.pts))
	g.rotMap = make([]map[EdgeID]int, len(g.pts))
	for n := range g.pts {
		in := g.adj[n]
		r := make([]EdgeID, len(in))
		copy(r, in)
		p := g.pts[n]
		sort.Slice(r, func(i, j int) bool {
			a := p.Angle(g.pts[g.edges[r[i]].Other(NodeID(n))])
			b := p.Angle(g.pts[g.edges[r[j]].Other(NodeID(n))])
			return a < b
		})
		g.rot[n] = r
		m := make(map[EdgeID]int, len(r))
		for i, e := range r {
			m[e] = i
		}
		g.rotMap[n] = m
	}
}

// Half identifies a directed half-edge: edge E traversed from node From.
type Half struct {
	E    EdgeID
	From NodeID
}

// To returns the head of the half-edge in g.
func (h Half) To(g *Graph) NodeID { return g.edges[h.E].Other(h.From) }

// Twin returns the opposite half-edge.
func (h Half) Twin(g *Graph) Half { return Half{E: h.E, From: h.To(g)} }

// nextAroundFace returns the half-edge that follows h on the boundary of
// the face to the LEFT of h, under the convention that faces are traced
// counter-clockwise (interior faces) by always taking the next edge
// clockwise from the reversed edge in the rotation at the head node.
func (g *Graph) nextAroundFace(h Half) Half {
	v := h.To(g)
	rot := g.rot[v]
	i := g.rotMap[v][h.E]
	// Clockwise next = previous in CCW order.
	j := i - 1
	if j < 0 {
		j = len(rot) - 1
	}
	return Half{E: rot[j], From: v}
}

// Face is a facial walk of the embedding: the sequence of half-edges
// bounding one face. Interior faces come out counter-clockwise (positive
// signed area); the single outer face is clockwise.
type Face struct {
	ID    FaceID
	Halfs []Half
	// Outer marks the unbounded face.
	Outer bool
}

// Nodes returns the node cycle of the face (tail of each half-edge).
func (f *Face) Nodes(g *Graph) []NodeID {
	out := make([]NodeID, len(f.Halfs))
	for i, h := range f.Halfs {
		out[i] = h.From
	}
	return out
}

// Polygon returns the face boundary as a polygon in walk order. Faces of a
// non-2-connected graph may repeat vertices (bridges are traversed twice);
// such polygons still yield a correct signed area.
func (f *Face) Polygon(g *Graph) geom.Polygon {
	pg := make(geom.Polygon, len(f.Halfs))
	for i, h := range f.Halfs {
		pg[i] = g.pts[h.From]
	}
	return pg
}

// FaceSet is the result of face extraction: all faces plus a lookup from
// directed half-edges to the face on their left.
type FaceSet struct {
	Faces []Face
	// left[e][0] is the face left of edge e directed U→V, left[e][1] is
	// the face left of V→U.
	left  [][2]FaceID
	outer FaceID
}

// Outer returns the ID of the unbounded face.
func (fs *FaceSet) Outer() FaceID { return fs.outer }

// LeftOf returns the face on the left of half-edge h in g.
func (fs *FaceSet) LeftOf(g *Graph, h Half) FaceID {
	if g.edges[h.E].U == h.From {
		return fs.left[h.E][0]
	}
	return fs.left[h.E][1]
}

// SidesOf returns the two faces flanking undirected edge e: the face to
// the left of U→V and the face to the left of V→U.
func (fs *FaceSet) SidesOf(e EdgeID) (uv, vu FaceID) {
	return fs.left[e][0], fs.left[e][1]
}

// Faces extracts all faces of the embedding by walking the rotation
// system. The graph must be connected and have at least one edge; every
// half-edge belongs to exactly one face. The outer face is identified as
// the facial walk with the most negative signed area.
func (g *Graph) Faces() (*FaceSet, error) {
	if len(g.edges) == 0 {
		return nil, fmt.Errorf("planar: face extraction on empty graph")
	}
	g.ensureRotation()
	fs := &FaceSet{left: make([][2]FaceID, len(g.edges)), outer: NoFace}
	for i := range fs.left {
		fs.left[i] = [2]FaceID{NoFace, NoFace}
	}
	seen := func(h Half) bool {
		if g.edges[h.E].U == h.From {
			return fs.left[h.E][0] != NoFace
		}
		return fs.left[h.E][1] != NoFace
	}
	mark := func(h Half, f FaceID) {
		if g.edges[h.E].U == h.From {
			fs.left[h.E][0] = f
		} else {
			fs.left[h.E][1] = f
		}
	}
	minArea := math.Inf(1)
	for ei := range g.edges {
		for _, start := range []Half{{E: EdgeID(ei), From: g.edges[ei].U}, {E: EdgeID(ei), From: g.edges[ei].V}} {
			if seen(start) {
				continue
			}
			id := FaceID(len(fs.Faces))
			var walk []Half
			h := start
			for steps := 0; ; steps++ {
				if steps > 4*len(g.edges)+4 {
					return nil, fmt.Errorf("planar: face walk did not close (non-planar embedding?)")
				}
				walk = append(walk, h)
				mark(h, id)
				h = g.nextAroundFace(h)
				if h == start {
					break
				}
			}
			f := Face{ID: id, Halfs: walk}
			a := f.Polygon(g).SignedArea()
			if a < minArea {
				minArea = a
				fs.outer = id
			}
			fs.Faces = append(fs.Faces, f)
		}
	}
	if fs.outer != NoFace {
		fs.Faces[fs.outer].Outer = true
	}
	return fs, nil
}

// CheckEuler verifies Euler's formula V − E + F = 2 for a connected planar
// embedding, returning an error describing the mismatch otherwise. It is
// used by tests and the generators' self-checks.
func (g *Graph) CheckEuler(fs *FaceSet) error {
	v, e, f := g.NumNodes(), g.NumEdges(), len(fs.Faces)
	if v-e+f != 2 {
		return fmt.Errorf("planar: Euler check failed: V=%d E=%d F=%d, V-E+F=%d (want 2)",
			v, e, f, v-e+f)
	}
	return nil
}

// Connected reports whether the graph is connected (ignoring isolated
// graphs of zero nodes, which count as connected).
func (g *Graph) Connected() bool {
	if len(g.pts) == 0 {
		return true
	}
	seen := make([]bool, len(g.pts))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[n] {
			o := g.edges[e].Other(n)
			if !seen[o] {
				seen[o] = true
				count++
				stack = append(stack, o)
			}
		}
	}
	return count == len(g.pts)
}
