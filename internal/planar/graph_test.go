package planar

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// buildTriangle returns the 3-cycle used by the doc examples.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(3, 3)
	a := g.AddNode(geom.Pt(0, 0))
	b := g.AddNode(geom.Pt(1, 0))
	c := g.AddNode(geom.Pt(0, 1))
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, c, a)
	return g
}

func mustEdge(t *testing.T, g *Graph, u, v NodeID) EdgeID {
	t.Helper()
	e, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return e
}

// buildGrid returns an nx × ny grid graph with unit spacing.
func buildGrid(t *testing.T, nx, ny int) *Graph {
	t.Helper()
	g := NewGraph(nx*ny, nx*ny*2)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			g.AddNode(geom.Pt(float64(x), float64(y)))
		}
	}
	id := func(x, y int) NodeID { return NodeID(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				mustEdge(t, g, id(x, y), id(x+1, y))
			}
			if y+1 < ny {
				mustEdge(t, g, id(x, y), id(x, y+1))
			}
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2, 1)
	a := g.AddNode(geom.Pt(0, 0))
	if _, err := g.AddEdge(a, a); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := g.AddEdge(a, 99); err == nil {
		t.Error("missing node accepted")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Error("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestTriangleFaces(t *testing.T) {
	g := buildTriangle(t)
	fs, err := g.Faces()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Faces) != 2 {
		t.Fatalf("faces = %d, want 2", len(fs.Faces))
	}
	if err := g.CheckEuler(fs); err != nil {
		t.Error(err)
	}
	outer := fs.Faces[fs.Outer()]
	if !outer.Outer {
		t.Error("outer face not marked")
	}
	if a := outer.Polygon(g).SignedArea(); a >= 0 {
		t.Errorf("outer face area = %v, want negative", a)
	}
	for i := range fs.Faces {
		if FaceID(i) == fs.Outer() {
			continue
		}
		if a := fs.Faces[i].Polygon(g).SignedArea(); a <= 0 {
			t.Errorf("interior face %d area = %v, want positive", i, a)
		}
	}
}

func TestGridFaces(t *testing.T) {
	for _, dim := range [][2]int{{2, 2}, {3, 3}, {4, 6}} {
		g := buildGrid(t, dim[0], dim[1])
		fs, err := g.Faces()
		if err != nil {
			t.Fatalf("%v: %v", dim, err)
		}
		wantInterior := (dim[0] - 1) * (dim[1] - 1)
		if got := len(fs.Faces) - 1; got != wantInterior {
			t.Errorf("%v: interior faces = %d, want %d", dim, got, wantInterior)
		}
		if err := g.CheckEuler(fs); err != nil {
			t.Errorf("%v: %v", dim, err)
		}
		// Every interior face of a unit grid has area 1.
		for i := range fs.Faces {
			if fs.Faces[i].Outer {
				continue
			}
			if a := fs.Faces[i].Polygon(g).SignedArea(); math.Abs(a-1) > 1e-9 {
				t.Errorf("%v: face area = %v, want 1", dim, a)
			}
		}
	}
}

func TestFaceSidesConsistency(t *testing.T) {
	g := buildGrid(t, 4, 4)
	fs, err := g.Faces()
	if err != nil {
		t.Fatal(err)
	}
	// Each edge flanks exactly two faces (possibly equal for bridges; a
	// grid has none), and LeftOf must agree with SidesOf.
	for ei := 0; ei < g.NumEdges(); ei++ {
		uv, vu := fs.SidesOf(EdgeID(ei))
		if uv == NoFace || vu == NoFace {
			t.Fatalf("edge %d has unassigned side", ei)
		}
		if uv == vu {
			t.Errorf("edge %d is a bridge in a grid", ei)
		}
		e := g.Edge(EdgeID(ei))
		if got := fs.LeftOf(g, Half{E: EdgeID(ei), From: e.U}); got != uv {
			t.Errorf("LeftOf U→V = %v, want %v", got, uv)
		}
		if got := fs.LeftOf(g, Half{E: EdgeID(ei), From: e.V}); got != vu {
			t.Errorf("LeftOf V→U = %v, want %v", got, vu)
		}
	}
}

func TestFacesAreaPartition(t *testing.T) {
	// Interior face areas must sum to the area enclosed by the outer walk.
	g := buildGrid(t, 5, 7)
	fs, err := g.Faces()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := range fs.Faces {
		if !fs.Faces[i].Outer {
			sum += fs.Faces[i].Polygon(g).SignedArea()
		}
	}
	outer := -fs.Faces[fs.Outer()].Polygon(g).SignedArea()
	if math.Abs(sum-outer) > 1e-9 {
		t.Errorf("interior sum %v != outer area %v", sum, outer)
	}
}

func TestDijkstra(t *testing.T) {
	g := buildGrid(t, 5, 5)
	sp := Dijkstra(g, 0)
	// Corner to corner on a unit grid: manhattan distance 8.
	if got := sp.Dist[24]; math.Abs(got-8) > 1e-9 {
		t.Errorf("corner dist = %v, want 8", got)
	}
	nodes, edges, ok := sp.PathTo(24)
	if !ok {
		t.Fatal("no path")
	}
	if len(edges) != 8 || len(nodes) != 9 {
		t.Errorf("path lengths = %d nodes, %d edges", len(nodes), len(edges))
	}
	if nodes[0] != 0 || nodes[len(nodes)-1] != 24 {
		t.Error("path endpoints wrong")
	}
	// Path edges must connect consecutive nodes.
	for i, e := range edges {
		ed := g.Edge(e)
		if !(ed.U == nodes[i] && ed.V == nodes[i+1]) && !(ed.V == nodes[i] && ed.U == nodes[i+1]) {
			t.Fatalf("edge %d does not connect path nodes", i)
		}
	}
}

func TestDijkstraToMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := buildGrid(t, 6, 6)
	for trial := 0; trial < 20; trial++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		sp := Dijkstra(g, src)
		nodes, edges, ok := DijkstraTo(g, src, dst)
		if !ok {
			t.Fatal("grid should be connected")
		}
		var sum float64
		for _, e := range edges {
			sum += g.Edge(e).Weight
		}
		if math.Abs(sum-sp.Dist[dst]) > 1e-9 {
			t.Errorf("DijkstraTo dist %v != Dijkstra %v", sum, sp.Dist[dst])
		}
		if nodes[0] != src || nodes[len(nodes)-1] != dst {
			t.Error("endpoints wrong")
		}
	}
}

func TestDijkstraToSelf(t *testing.T) {
	g := buildTriangle(t)
	nodes, edges, ok := DijkstraTo(g, 1, 1)
	if !ok || len(nodes) != 1 || len(edges) != 0 {
		t.Errorf("self path = %v %v %v", nodes, edges, ok)
	}
}

func TestBFSHops(t *testing.T) {
	g := buildGrid(t, 3, 3)
	hops := BFSHops(g, 0)
	if hops[8] != 4 {
		t.Errorf("corner hops = %d, want 4", hops[8])
	}
	if hops[0] != 0 {
		t.Errorf("source hops = %d", hops[0])
	}
}

func TestAvgShortestPathLength(t *testing.T) {
	g := buildGrid(t, 4, 4)
	l := AvgShortestPathLength(g, 0)
	if l <= 0 || l >= 6 {
		t.Errorf("avg path length = %v out of plausible range", l)
	}
	// Sampled estimate should be close to exact.
	ls := AvgShortestPathLength(g, 4)
	if math.Abs(ls-l) > 1.0 {
		t.Errorf("sampled %v vs exact %v", ls, l)
	}
}

func TestConnected(t *testing.T) {
	g := buildTriangle(t)
	if !g.Connected() {
		t.Error("triangle not connected")
	}
	g.AddNode(geom.Pt(9, 9))
	if g.Connected() {
		t.Error("isolated node not detected")
	}
}

func TestFindEdge(t *testing.T) {
	g := buildTriangle(t)
	if g.FindEdge(0, 1) == NoEdge {
		t.Error("existing edge not found")
	}
	if g.FindEdge(1, 0) == NoEdge {
		t.Error("reverse lookup failed")
	}
	g2 := NewGraph(2, 0)
	a := g2.AddNode(geom.Pt(0, 0))
	b := g2.AddNode(geom.Pt(1, 0))
	if g2.FindEdge(a, b) != NoEdge {
		t.Error("phantom edge found")
	}
}

func TestNeighbors(t *testing.T) {
	g := buildTriangle(t)
	ns := g.Neighbors(0, nil)
	if len(ns) != 2 {
		t.Errorf("neighbors = %v", ns)
	}
}
