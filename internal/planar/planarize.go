package planar

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Planarize builds an embedded planar graph from a raw set of segments
// that may cross: it inserts a node at every pairwise intersection point
// (the paper's §4.2 step of removing flyover/underpass crossings by
// inserting nodes), merges coincident endpoints, and splits segments into
// non-crossing edges.
//
// The implementation is the straightforward O(n²) pairwise sweep, which is
// ample for the synthetic-city sizes used here (thousands of segments).
func Planarize(segs []geom.Segment) (*Graph, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("planar: no segments to planarize")
	}
	// Collect split points per segment: endpoints plus intersections.
	splits := make([][]geom.Point, len(segs))
	for i, s := range segs {
		splits[i] = append(splits[i], s.A, s.B)
	}
	for i := 0; i < len(segs); i++ {
		for j := i + 1; j < len(segs); j++ {
			if !segs[i].Bounds().Expand(geom.Eps).Intersects(segs[j].Bounds()) {
				continue
			}
			if p, ok := segs[i].Intersection(segs[j]); ok {
				splits[i] = append(splits[i], p)
				splits[j] = append(splits[j], p)
			}
		}
	}
	g := NewGraph(len(segs), len(segs)*2)
	idx := newPointIndex()
	for i, s := range segs {
		pts := splits[i]
		dir := s.B.Sub(s.A)
		sort.Slice(pts, func(a, b int) bool {
			return pts[a].Sub(s.A).Dot(dir) < pts[b].Sub(s.A).Dot(dir)
		})
		prev := idx.id(g, pts[0])
		for _, p := range pts[1:] {
			cur := idx.id(g, p)
			if cur == prev {
				continue // duplicate split point
			}
			if g.FindEdge(prev, cur) == NoEdge {
				if _, err := g.AddEdge(prev, cur); err != nil {
					return nil, err
				}
			}
			prev = cur
		}
	}
	return g, nil
}

// pointIndex deduplicates points within geom.Eps via a snapped-grid map.
type pointIndex struct {
	m map[[2]int64]NodeID
}

func newPointIndex() *pointIndex {
	return &pointIndex{m: make(map[[2]int64]NodeID)}
}

const snapScale = 1 / (10 * geom.Eps)

func snapKey(p geom.Point) [2]int64 {
	return [2]int64{int64(math.Round(p.X * snapScale)), int64(math.Round(p.Y * snapScale))}
}

// id returns the node for p, creating it on first sight.
func (px *pointIndex) id(g *Graph, p geom.Point) NodeID {
	k := snapKey(p)
	if n, ok := px.m[k]; ok {
		return n
	}
	n := g.AddNode(p)
	px.m[k] = n
	return n
}

// SimplifyDegree2 removes "contour" nodes: nodes of degree 2 that only
// describe road geometry (paper §5.1.3). The two incident edges are merged
// into one whose weight is the sum of the originals. Nodes listed in keep
// are preserved regardless of degree. The result is a new graph; node IDs
// are remapped, and the mapping from old to new IDs is returned (NoNode
// for removed nodes).
//
// Chains that would collapse into a self loop or a duplicate parallel edge
// keep one interior node to stay a simple graph.
func SimplifyDegree2(g *Graph, keep map[NodeID]bool) (*Graph, []NodeID) {
	n := g.NumNodes()
	removable := make([]bool, n)
	for i := 0; i < n; i++ {
		removable[i] = g.Degree(NodeID(i)) == 2 && !keep[NodeID(i)]
	}
	// Components made entirely of removable nodes (isolated cycles) have
	// no anchor to collapse toward; keep them unchanged.
	reached := make([]bool, n)
	var stack []NodeID
	for i := 0; i < n; i++ {
		if !removable[i] {
			reached[i] = true
			stack = append(stack, NodeID(i))
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Incident(v) {
			o := g.Edge(e).Other(v)
			if !reached[o] {
				reached[o] = true
				stack = append(stack, o)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !reached[i] {
			removable[i] = false
		}
	}
	type chainEdge struct {
		u, v NodeID
		w    float64
	}
	var out []chainEdge
	visited := make([]bool, g.NumEdges())
	for ei := range g.Edges() {
		if visited[ei] {
			continue
		}
		e := g.Edge(EdgeID(ei))
		if removable[e.U] || removable[e.V] {
			continue // handled by chain walks below
		}
		visited[ei] = true
		out = append(out, chainEdge{e.U, e.V, e.Weight})
	}
	// Walk chains starting from each non-removable node.
	for s := 0; s < n; s++ {
		if removable[s] {
			continue
		}
		for _, e0 := range g.Incident(NodeID(s)) {
			if visited[e0] {
				continue
			}
			o := g.Edge(e0).Other(NodeID(s))
			if !removable[o] {
				continue
			}
			// Trace the chain s — o — ... — t.
			w := g.Edge(e0).Weight
			visited[e0] = true
			prev := NodeID(s)
			cur := o
			var interior []NodeID
			for removable[cur] {
				interior = append(interior, cur)
				var next EdgeID = NoEdge
				for _, e := range g.Incident(cur) {
					if g.Edge(e).Other(cur) != prev || visited[e] {
						if !visited[e] {
							next = e
						}
					}
				}
				if next == NoEdge {
					break
				}
				visited[next] = true
				w += g.Edge(next).Weight
				prev, cur = cur, g.Edge(next).Other(cur)
			}
			if cur == NodeID(s) || removable[cur] {
				// Cycle chain back to the anchor: a single kept midpoint
				// would produce a parallel edge pair, so keep two
				// interior nodes and emit three edges. A cycle in a
				// simple graph has at least two interior nodes.
				if len(interior) >= 2 {
					m1 := interior[len(interior)/3]
					m2 := interior[2*len(interior)/3]
					removable[m1] = false
					removable[m2] = false
					out = append(out, chainEdge{NodeID(s), m1, w / 3},
						chainEdge{m1, m2, w / 3},
						chainEdge{m2, cur, w / 3})
				}
				continue
			}
			out = append(out, chainEdge{NodeID(s), cur, w})
		}
	}
	// Isolated removable cycles (all nodes degree 2, none kept) are
	// dropped entirely; they cannot occur in connected city graphs with a
	// kept gateway, so no special handling beyond ignoring them.

	remap := make([]NodeID, n)
	ng := NewGraph(n, len(out))
	for i := 0; i < n; i++ {
		if removable[i] {
			remap[i] = NoNode
			continue
		}
		remap[i] = ng.AddNode(g.Point(NodeID(i)))
	}
	seen := make(map[[2]NodeID]bool, len(out))
	for _, ce := range out {
		u, v := remap[ce.u], remap[ce.v]
		if u == NoNode || v == NoNode || u == v {
			continue
		}
		k := [2]NodeID{u, v}
		if v < u {
			k = [2]NodeID{v, u}
		}
		if seen[k] {
			continue // keep the graph simple: drop parallel merged edges
		}
		seen[k] = true
		// Edge weight keeps the traversed road length even though the
		// drawn segment is now a chord.
		if _, err := ng.AddWeightedEdge(u, v, ce.w); err == nil {
			continue
		}
	}
	return ng, remap
}
