package planar

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestPlanarizeCross(t *testing.T) {
	// Two crossing diagonals become 4 edges meeting at a new centre node.
	segs := []geom.Segment{
		geom.Seg(geom.Pt(0, 0), geom.Pt(2, 2)),
		geom.Seg(geom.Pt(0, 2), geom.Pt(2, 0)),
	}
	g, err := Planarize(segs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d, want 4", g.NumEdges())
	}
	// The centre node has degree 4.
	deg4 := 0
	for n := 0; n < g.NumNodes(); n++ {
		if g.Degree(NodeID(n)) == 4 {
			deg4++
			if !g.Point(NodeID(n)).Eq(geom.Pt(1, 1)) {
				t.Errorf("centre at %v", g.Point(NodeID(n)))
			}
		}
	}
	if deg4 != 1 {
		t.Errorf("degree-4 nodes = %d, want 1", deg4)
	}
}

func TestPlanarizeSharedEndpoints(t *testing.T) {
	// A square given as 4 segments: endpoints must merge, no extra nodes.
	segs := []geom.Segment{
		geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0)),
		geom.Seg(geom.Pt(1, 0), geom.Pt(1, 1)),
		geom.Seg(geom.Pt(1, 1), geom.Pt(0, 1)),
		geom.Seg(geom.Pt(0, 1), geom.Pt(0, 0)),
	}
	g, err := Planarize(segs)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Errorf("got %d nodes %d edges, want 4/4", g.NumNodes(), g.NumEdges())
	}
	fs, err := g.Faces()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Faces) != 2 {
		t.Errorf("faces = %d, want 2", len(fs.Faces))
	}
}

func TestPlanarizeGridOfSegments(t *testing.T) {
	// 3 horizontal × 3 vertical long streets = 9 intersections.
	var segs []geom.Segment
	for i := 0; i < 3; i++ {
		y := float64(i)
		segs = append(segs, geom.Seg(geom.Pt(-0.5, y), geom.Pt(2.5, y)))
		x := float64(i)
		segs = append(segs, geom.Seg(geom.Pt(x, -0.5), geom.Pt(x, 2.5)))
	}
	g, err := Planarize(segs)
	if err != nil {
		t.Fatal(err)
	}
	// 9 crossings + 12 dangling endpoints.
	if g.NumNodes() != 21 {
		t.Errorf("nodes = %d, want 21", g.NumNodes())
	}
	// Each street splits into 4 edges: 6 streets × 4 = 24.
	if g.NumEdges() != 24 {
		t.Errorf("edges = %d, want 24", g.NumEdges())
	}
	if !g.Connected() {
		t.Error("planarized grid not connected")
	}
}

func TestPlanarizeEmpty(t *testing.T) {
	if _, err := Planarize(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestSimplifyDegree2(t *testing.T) {
	// Path a—b—c—d with b,c degree 2 collapses to a single edge a—d with
	// the summed weight.
	g := NewGraph(4, 3)
	a := g.AddNode(geom.Pt(0, 0))
	b := g.AddNode(geom.Pt(1, 0.2))
	c := g.AddNode(geom.Pt(2, -0.2))
	d := g.AddNode(geom.Pt(3, 0))
	for _, pair := range [][2]NodeID{{a, b}, {b, c}, {c, d}} {
		mustEdge(t, g, pair[0], pair[1])
	}
	var wantW float64
	for ei := 0; ei < g.NumEdges(); ei++ {
		wantW += g.Edge(EdgeID(ei)).Weight
	}
	ng, remap := SimplifyDegree2(g, nil)
	if ng.NumNodes() != 2 || ng.NumEdges() != 1 {
		t.Fatalf("simplified to %d nodes %d edges", ng.NumNodes(), ng.NumEdges())
	}
	if remap[a] == NoNode || remap[d] == NoNode {
		t.Error("endpoints removed")
	}
	if remap[b] != NoNode || remap[c] != NoNode {
		t.Error("interior contour nodes kept")
	}
	if got := ng.Edge(0).Weight; math.Abs(got-wantW) > 1e-9 {
		t.Errorf("merged weight = %v, want %v", got, wantW)
	}
}

func TestSimplifyDegree2Keep(t *testing.T) {
	g := NewGraph(3, 2)
	a := g.AddNode(geom.Pt(0, 0))
	b := g.AddNode(geom.Pt(1, 0))
	c := g.AddNode(geom.Pt(2, 0))
	mustEdge(t, g, a, b)
	mustEdge(t, g, b, c)
	ng, remap := SimplifyDegree2(g, map[NodeID]bool{b: true})
	if ng.NumNodes() != 3 || ng.NumEdges() != 2 {
		t.Errorf("kept node was simplified: %d nodes %d edges", ng.NumNodes(), ng.NumEdges())
	}
	if remap[b] == NoNode {
		t.Error("kept node removed")
	}
}

func TestSimplifyDegree2IsolatedCycle(t *testing.T) {
	// A pure cycle has no anchor junctions: it must be kept unchanged
	// rather than dropped.
	g := NewGraph(4, 4)
	a := g.AddNode(geom.Pt(0, 0))
	b := g.AddNode(geom.Pt(2, 0))
	c := g.AddNode(geom.Pt(1, 2))
	m := g.AddNode(geom.Pt(1, 0.1))
	mustEdge(t, g, a, m)
	mustEdge(t, g, m, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, c, a)
	ng, remap := SimplifyDegree2(g, nil)
	if ng.NumNodes() != 4 || ng.NumEdges() != 4 {
		t.Errorf("got %d nodes %d edges, want 4/4 unchanged", ng.NumNodes(), ng.NumEdges())
	}
	for _, n := range []NodeID{a, b, c, m} {
		if remap[n] == NoNode {
			t.Errorf("cycle node %d removed", n)
		}
	}
	if !ng.Connected() {
		t.Error("simplified graph disconnected")
	}
}

func TestSimplifyDegree2CycleWithAnchor(t *testing.T) {
	// A cycle with one anchor (degree-3 node via a pendant edge): the
	// cycle interior collapses but stays a simple graph (no self loop or
	// parallel pair) by keeping one midpoint node.
	g := NewGraph(5, 5)
	a := g.AddNode(geom.Pt(0, 0)) // anchor: degree 3
	b := g.AddNode(geom.Pt(2, 0))
	c := g.AddNode(geom.Pt(1, 2))
	m := g.AddNode(geom.Pt(1, -0.5))
	p := g.AddNode(geom.Pt(-2, 0)) // pendant
	mustEdge(t, g, a, m)
	mustEdge(t, g, m, b)
	mustEdge(t, g, b, c)
	mustEdge(t, g, c, a)
	mustEdge(t, g, a, p)
	ng, remap := SimplifyDegree2(g, nil)
	if remap[a] == NoNode || remap[p] == NoNode {
		t.Fatal("anchor or pendant removed")
	}
	if !ng.Connected() {
		t.Error("simplified graph disconnected")
	}
	// No self loops (AddEdge would have rejected them), and at least the
	// anchor–pendant edge plus a cycle remnant must remain.
	if ng.NumEdges() < 3 {
		t.Errorf("edges = %d, want ≥ 3", ng.NumEdges())
	}
}
