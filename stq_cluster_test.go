package stq

// Seeded end-to-end tests of the multi-process scale-out topology
// (DESIGN.md §16): N cells — real Servers in cell mode on loopback
// listeners — behind a router running the unmodified engine over the
// network-backed cluster store. The router must answer every query
// kind bit-identically to a single-process system over the same world
// and stream (exact, sampled, degraded, and after per-cell crash
// recovery), and a dead cell must degrade answers into sound widened
// intervals instead of failing them.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/learned"
	"repro/internal/partition"
	"repro/internal/roadnet"
)

// testCluster is one booted topology plus direct handles to every cell
// so tests can crash and restart them.
type testCluster struct {
	t     *testing.T
	man   *cluster.Manifest
	world *roadnet.World
	lay   *partition.Layout
	dirs  []string // durable cell directories ("" = in-memory cell)
	addrs []string
	cells []*System
	srvs  []*Server
	https []*http.Server
	rset  *cluster.RemoteSet
	sys   *System // the router-resident engine
}

// bootTestCluster materializes a pinned manifest over the standard test
// grid and boots the full topology. durable cells recover from their
// own WAL directories across restartCell.
func bootTestCluster(t *testing.T, cells int, durable bool) *testCluster {
	t.Helper()
	opts := GridOpts{NX: 10, NY: 10, Spacing: 50, Jitter: 0.2, RemoveFrac: 0.15}
	man, world, lay, err := cluster.NewManifest(cluster.GridSpec(opts, 7), cells)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{
		t: t, man: man, world: world, lay: lay,
		dirs:  make([]string, cells),
		addrs: make([]string, cells),
		cells: make([]*System, cells),
		srvs:  make([]*Server, cells),
		https: make([]*http.Server, cells),
	}
	for p := 0; p < cells; p++ {
		if durable {
			tc.dirs[p] = t.TempDir()
		}
		tc.startCell(p, "127.0.0.1:0")
	}
	tc.rset, err = cluster.Dial(man, tc.addrs, cluster.Options{
		Timeout: 5 * time.Second, Attempts: 2, Backoff: time.Millisecond,
		HealthInterval: -1, // tests drive Probe explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.sys = NewClusterSystem(tc.rset)
	if err := tc.sys.SetIngestOrdering(OrderPerEdge); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, hs := range tc.https {
			if hs != nil {
				hs.Close()
			}
		}
		tc.sys.Close()
		for p, srv := range tc.srvs {
			if srv != nil {
				srv.Drain()
				tc.cells[p].Close()
			}
		}
	})
	return tc
}

// startCell boots (or re-boots) cell p on addr. With a durable
// directory the system recovers its WAL first — the crash-recovery
// path a restarted stqd -cell takes.
func (tc *testCluster) startCell(p int, addr string) {
	tc.t.Helper()
	var csys *System
	var err error
	if tc.dirs[p] != "" {
		csys, err = OpenDurable(tc.world, Durability{Dir: tc.dirs[p]})
		if err != nil {
			tc.t.Fatalf("cell %d: OpenDurable: %v", p, err)
		}
	} else {
		csys = NewSystem(tc.world)
	}
	if err := csys.SetIngestOrdering(OrderPerEdge); err != nil {
		tc.t.Fatal(err)
	}
	cc := &CellConfig{Index: p, Cells: tc.man.Cells, ManifestHash: tc.man.LayoutHash, Layout: tc.lay}
	if err := cc.Validate(); err != nil {
		tc.t.Fatal(err)
	}
	srv := NewServer(csys, ServerConfig{Cell: cc})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		tc.t.Fatalf("cell %d: listen %s: %v", p, addr, err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	tc.addrs[p] = ln.Addr().String()
	tc.cells[p], tc.srvs[p], tc.https[p] = csys, srv, hs
}

// killCell crashes cell p: the listener closes, in-flight connections
// die, nothing drains and nothing checkpoints.
func (tc *testCluster) killCell(p int) {
	tc.t.Helper()
	if err := tc.https[p].Close(); err != nil {
		tc.t.Fatal(err)
	}
	tc.https[p], tc.srvs[p] = nil, nil
}

// restartCell reboots a crashed durable cell on its old address and
// re-handshakes the router.
func (tc *testCluster) restartCell(p int) {
	tc.t.Helper()
	tc.startCell(p, tc.addrs[p])
	tc.rset.Probe()
	if !tc.rset.CellAlive(p) {
		tc.t.Fatalf("cell %d still dead after restart + probe", p)
	}
}

// newClusterPair boots a cluster and a single-process reference over
// the same world, both ingesting the same seeded workload through
// their normal paths.
func newClusterPair(t *testing.T, cells int) (ref *System, tc *testCluster, wl *Workload) {
	t.Helper()
	tc = bootTestCluster(t, cells, false)
	ref = NewSystem(tc.world)
	if err := ref.SetIngestOrdering(OrderPerEdge); err != nil {
		t.Fatal(err)
	}
	wl, err := ref.GenerateWorkload(MobilityOpts{
		Objects: 80, Horizon: 20000, TripsPerObject: 4,
		MeanSpeed: 10, MeanPause: 300, LeaveProb: 0.5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Ingest(wl); err != nil {
		t.Fatal(err)
	}
	if err := tc.sys.Ingest(wl); err != nil {
		t.Fatal(err)
	}
	return ref, tc, wl
}

// TestClusterBitIdenticalExact: the router's scatter-gathered answers
// equal single-process answers bit for bit at 2 and 4 cells, for rects
// straddling one, several, and all cells.
func TestClusterBitIdenticalExact(t *testing.T) {
	for _, cells := range []int{2, 4} {
		ref, tc, wl := newClusterPair(t, cells)
		if got, want := tc.sys.NumEvents(), ref.NumEvents(); got != want {
			t.Fatalf("cells=%d: router sees %d events, reference %d", cells, got, want)
		}
		if got := tc.sys.NumPartitions(); got != cells {
			t.Fatalf("NumPartitions = %d, want %d", got, cells)
		}
		rects := straddleRects(t, tc.sys, cells)
		assertIdenticalResponses(t, ref, tc.sys, rects, wl.Horizon)
	}
}

// TestClusterBitIdenticalSampled: with identical sensor placement the
// sampled lower/upper bounds survive the network unchanged.
func TestClusterBitIdenticalSampled(t *testing.T) {
	ref, tc, wl := newClusterPair(t, 4)
	if err := ref.PlaceSensors(PlacementQuadTree, 25, 9); err != nil {
		t.Fatal(err)
	}
	if err := tc.sys.PlaceSensors(PlacementQuadTree, 25, 9); err != nil {
		t.Fatal(err)
	}
	rects := straddleRects(t, tc.sys, 4)
	assertIdenticalResponses(t, ref, tc.sys, rects, wl.Horizon)
}

// TestClusterBitIdenticalDegraded: an identical seeded fault plan
// (sensor crashes, drops, retries) produces identical degraded answers
// through the router — the approximation machinery composes with the
// network transport.
func TestClusterBitIdenticalDegraded(t *testing.T) {
	ref, tc, wl := newClusterPair(t, 4)
	for _, sys := range []*System{ref, tc.sys} {
		if err := sys.PlaceSensors(PlacementQuadTree, 30, 11); err != nil {
			t.Fatal(err)
		}
		if err := sys.ApplyFaults(FaultSpec{Seed: 17, SensorCrash: 0.1, DropProb: 0.1, MaxRetries: 3}); err != nil {
			t.Fatal(err)
		}
	}
	rects := straddleRects(t, tc.sys, 4)
	assertIdenticalResponses(t, ref, tc.sys, rects, wl.Horizon)
	degraded := false
	for _, rect := range rects {
		resp, err := tc.sys.Query(Query{Rect: rect, T1: wl.Horizon * 0.3, T2: wl.Horizon * 0.7, Kind: Transient, Bound: Upper})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Degradation != nil {
			degraded = true
		}
	}
	if !degraded {
		t.Error("fault plan degraded no query; scenario vacuous")
	}
}

// TestClusterCellCrashRecovery: a durable cell crashes (no drain, no
// final checkpoint) and reboots from its own WAL on the old address;
// after one probe the router answers bit-identically again, and keeps
// ingesting across the whole cluster.
func TestClusterCellCrashRecovery(t *testing.T) {
	tc := bootTestCluster(t, 2, true)
	ref := NewSystem(tc.world)
	if err := ref.SetIngestOrdering(OrderPerEdge); err != nil {
		t.Fatal(err)
	}
	batches := durableBatches(tc.world, 30, 6, 0, 33)
	for _, b := range batches {
		if err := tc.sys.RecordBatch(b); err != nil {
			t.Fatal(err)
		}
		if err := ref.RecordBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	horizon := 30 * 6 * 3.0
	// The crash must not be allowed to eat the WAL tail: sync like an
	// operator would before pulling the plug.
	if err := tc.cells[1].SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// Crash: stop serving without draining or closing the system — the
	// WAL directory is all the restart gets.
	tc.killCell(1)

	tc.restartCell(1)
	if got, want := tc.sys.NumEvents(), ref.NumEvents(); got != want {
		t.Fatalf("router sees %d events after recovery, want %d", got, want)
	}
	assertSameAnswers(t, ref, tc.sys, horizon)

	// The recovered topology keeps ingesting and stays bit-identical.
	more := durableBatches(tc.world, 3, 6, horizon+1, 44)
	for _, b := range more {
		if err := tc.sys.RecordBatch(b); err != nil {
			t.Fatalf("post-recovery RecordBatch: %v", err)
		}
		if err := ref.RecordBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	assertSameAnswers(t, ref, tc.sys, horizon+60)
}

// liveOnlyRect finds a rect whose region — junctions and both
// endpoints of every possible cut road — is owned entirely by cells
// other than dead. Queries over it must stay exact after the kill.
func liveOnlyRect(tc *testCluster, dead int) (Rect, bool) {
	b := tc.sys.Bounds()
	for _, frac := range []float64{0.35, 0.25, 0.18} {
		for _, corner := range []Rect{
			{Min: b.Min, Max: Point{X: b.Min.X + b.Width()*frac, Y: b.Min.Y + b.Height()*frac}},
			{Min: Point{X: b.Max.X - b.Width()*frac, Y: b.Min.Y}, Max: Point{X: b.Max.X, Y: b.Min.Y + b.Height()*frac}},
			{Min: Point{X: b.Min.X, Y: b.Max.Y - b.Height()*frac}, Max: Point{X: b.Min.X + b.Width()*frac, Y: b.Max.Y}},
			{Min: Point{X: b.Max.X - b.Width()*frac, Y: b.Max.Y - b.Height()*frac}, Max: b.Max},
		} {
			// Expand by two grid spacings so the check covers the outside
			// endpoints of perimeter roads too.
			pad := 100.0
			grown := Rect{
				Min: Point{X: corner.Min.X - pad, Y: corner.Min.Y - pad},
				Max: Point{X: corner.Max.X + pad, Y: corner.Max.Y + pad},
			}
			js := tc.world.JunctionsIn(grown)
			if len(js) == 0 {
				continue
			}
			ok := true
			for _, j := range js {
				if tc.lay.OwnerOfJunction(j) == dead {
					ok = false
					break
				}
			}
			if ok {
				return corner, true
			}
		}
	}
	return Rect{}, false
}

// TestClusterDegradesOnCellDeath: killing one cell mid-run never turns
// a query into an error — affected answers carry a sound widened
// [Lower, Upper] interval around the true count, regions owned
// entirely by live cells stay exact, and ingest routed at the dead
// cell refuses with ErrClusterUnavailable (503 through the serving
// layer). Run under -race: queries race the death and the health
// accounting.
func TestClusterDegradesOnCellDeath(t *testing.T) {
	ref, tc, wl := newClusterPair(t, 4)
	const dead = 3
	rects := straddleRects(t, tc.sys, 4)
	queries := make([]Query, len(rects))
	truth := make([]float64, len(rects))
	for i, rect := range rects {
		queries[i] = Query{Rect: rect, T1: wl.Horizon * 0.3, T2: wl.Horizon * 0.7, Kind: Kind(i % 3)}
		resp, err := ref.Query(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		truth[i] = resp.Count
	}

	// Concurrent queries race the kill; every answer must be exact or a
	// sound interval — never an error, never silently narrow.
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				i := (g + it) % len(queries)
				resp, err := tc.sys.Query(queries[i])
				if err != nil {
					errCh <- err
					return
				}
				if resp.Degradation == nil {
					if resp.Count != truth[i] {
						errCh <- errors.New("undegraded answer differs from reference")
						return
					}
					continue
				}
				d := resp.Degradation
				if d.Lower > truth[i] || d.Upper < truth[i] {
					errCh <- errors.New("degraded interval does not contain the true count")
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	tc.killCell(dead)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("query during cell death: %v", err)
	}

	// Steady state after the death: a whole-world query must degrade —
	// and soundly so.
	resp, err := tc.sys.Query(queries[0])
	if err != nil {
		t.Fatalf("query with dead cell: %v", err)
	}
	if resp.Degradation == nil {
		t.Fatal("whole-world query not degraded with a dead cell")
	}
	if d := resp.Degradation; d.Lower > truth[0] || d.Upper < truth[0] {
		t.Fatalf("degraded interval [%v,%v] excludes true count %v", d.Lower, d.Upper, truth[0])
	}
	if resp.Degradation.FailedNodes == 0 {
		t.Error("degradation reports no failed cells")
	}

	// A region owned entirely by live cells stays exact.
	if rect, ok := liveOnlyRect(tc, dead); ok {
		q := Query{Rect: rect, T1: wl.Horizon * 0.3, T2: wl.Horizon * 0.7, Kind: Snapshot}
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.sys.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degradation != nil {
			t.Errorf("live-cell-only region degraded: %+v", *got.Degradation)
		}
		if got.Count != want.Count {
			t.Errorf("live-cell-only region count %v != reference %v", got.Count, want.Count)
		}
	} else {
		t.Log("no corner rect avoids the dead cell; exactness subtest skipped")
	}

	// Ingest routed at the dead cell refuses with the sentinel...
	deadEvent := deadCellEvent(t, tc, dead, wl.Horizon)
	err = tc.sys.RecordBatch([]Event{deadEvent})
	if !errors.Is(err, ErrClusterUnavailable) {
		t.Fatalf("ingest to dead cell: err %v, want ErrClusterUnavailable", err)
	}
	// ...and the serving layer maps that to 503, not 400.
	srv := NewServer(tc.sys, ServerConfig{})
	body, _ := json.Marshal(IngestRequest{Events: []IngestEvent{{
		Kind: "move", T: deadEvent.T + 1, Road: int(deadEvent.Road), From: int(deadEvent.From),
	}}})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest to dead cell over HTTP: %d, want 503", rec.Code)
	}
	srv.Drain()
}

// deadCellEvent builds a valid move event on a road owned by the dead
// cell, timestamped past everything ingested so far.
func deadCellEvent(t *testing.T, tc *testCluster, dead int, after float64) Event {
	t.Helper()
	for road := 0; road < tc.world.NumRoads(); road++ {
		if tc.lay.OwnerOfRoad(EdgeID(road)) == dead {
			e := tc.world.Star.Edge(EdgeID(road))
			return MoveEvent(EdgeID(road), e.U, after+10)
		}
	}
	t.Fatalf("no road owned by cell %d", dead)
	return Event{}
}

// TestClusterServerReadyz: /readyz reflects SetReady and draining —
// the signal a router's health loop and an orchestrator's readiness
// probe both consume.
func TestClusterServerReadyz(t *testing.T) {
	sys, _ := newTestSystem(t)
	srv := NewServer(sys, ServerConfig{})
	get := func(path string) int {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("fresh server readyz: %d, want 200", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("fresh server healthz: %d, want 200", c)
	}
	srv.SetReady(false)
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("not-ready readyz: %d, want 503", c)
	}
	if c := get("/healthz"); c != http.StatusOK {
		t.Fatalf("not-ready healthz: %d, want 200 (liveness is not readiness)", c)
	}
	srv.SetReady(true)
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("re-readied readyz: %d, want 200", c)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d, want 503", c)
	}
}

// TestClusterRejectsMisroutedIngest: a cell must refuse a batch owned
// by another cell before anything is applied — the guard against a
// divergent router or a client bypassing it.
func TestClusterRejectsMisroutedIngest(t *testing.T) {
	tc := bootTestCluster(t, 2, false)
	foreign := deadCellEvent(t, tc, 1, 100)
	body, _ := json.Marshal(IngestRequest{Events: []IngestEvent{{
		Kind: "move", T: foreign.T, Road: int(foreign.Road), From: int(foreign.From),
	}}})
	resp, err := http.Post("http://"+tc.addrs[0]+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misrouted ingest: %d, want 400", resp.StatusCode)
	}
	if n := tc.cells[0].NumEvents(); n != 0 {
		t.Fatalf("misrouted ingest applied %d events", n)
	}
}

// TestClusterLearnedModelsRefused: constant-size learned forms replace
// the store wholesale; a network-backed store cannot be swapped out,
// so the combination must be refused loudly.
func TestClusterLearnedModelsRefused(t *testing.T) {
	tc := bootTestCluster(t, 2, false)
	if err := tc.sys.UseLearnedModels(learned.PiecewiseTrainer{Segments: 8}); err == nil {
		t.Fatal("learned models accepted on a cluster system")
	}
}
