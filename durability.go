package stq

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/learned"
	"repro/internal/roadnet"
	"repro/internal/wal"
)

// SyncPolicy selects when durable appends reach stable storage
// (internal/wal, DESIGN.md §11).
type SyncPolicy = wal.SyncPolicy

// Fsync policies for Durability.Sync.
const (
	// SyncInterval (the default) fsyncs at most once per SyncEvery.
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs after every append.
	SyncAlways = wal.SyncAlways
	// SyncNever leaves persistence timing to the OS.
	SyncNever = wal.SyncNever
)

// Durability configures the opt-in durability subsystem: a segmented,
// CRC32C-framed write-ahead log plus versioned checkpoints, rooted at
// Dir. See OpenDurable.
type Durability struct {
	// Dir is the directory holding the log segments and checkpoints.
	// It is created if missing.
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery bounds the fsync interval under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rolls the active log segment when it would exceed
	// this size (default 8 MiB).
	SegmentBytes int64
	// Partitions > 1 opens a spatially partitioned durable system
	// (NewPartitionedSystem): each partition keeps its own log and
	// checkpoints under Dir/part-NNN, appends touch only the logs of
	// the partitions a batch routed to, and recovery replays every
	// partition independently (in parallel). The partition count is
	// recorded in Dir and must match on reopen — routing is a pure
	// function of (world, count), so a different count would replay
	// events into the wrong stores.
	Partitions int
}

// partitionMetaName is the file recording the layout parameters of a
// partitioned durable directory.
const partitionMetaName = "partitions.json"

type partitionMeta struct {
	Partitions int `json:"partitions"`
}

// OpenDurable wraps a world in a durable System: every ingested batch
// is appended to the write-ahead log in cfg.Dir, and previously logged
// state is recovered first. Recovery loads the newest valid checkpoint,
// replays the surviving log tail — tolerating a torn or truncated final
// record — and produces a store whose query answers are bit-identical
// to the pre-crash system over the recovered event prefix.
//
// The world must be the same world the directory's history was recorded
// against: checkpoints and log records reference roads and gateways by
// ID. Restoring against a world with fewer roads fails validation;
// matching worlds is the caller's contract (persist the world alongside,
// e.g. with worldio).
//
// Restore publishes a fresh serving engine and advances ServingEpoch
// strictly past the checkpointed epoch, so no query plan cached before
// the crash — or compiled by a previous incarnation — can be served
// against the recovered store.
//
// With cfg.Partitions > 1 the system is partitioned (DESIGN.md §14):
// one log directory per partition, recovered in parallel.
func OpenDurable(w *roadnet.World, cfg Durability) (*System, error) {
	if cfg.Partitions > 1 {
		return openDurablePartitioned(w, cfg)
	}
	l, rec, err := wal.Open(cfg.Dir, wal.Options{
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncEvery,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	s := NewSystem(w)
	if err := s.restoreRecovered(rec); err != nil {
		l.Close()
		return nil, err
	}
	s.dlog = l
	return s, nil
}

// openDurablePartitioned opens (or creates) a partitioned durable
// directory: a meta file pinning the partition count plus one WAL
// directory per partition, each recovered independently.
func openDurablePartitioned(w *roadnet.World, cfg Durability) (*System, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("stq: creating durable dir: %w", err)
	}
	metaPath := filepath.Join(cfg.Dir, partitionMetaName)
	if b, err := os.ReadFile(metaPath); err == nil {
		var meta partitionMeta
		if err := json.Unmarshal(b, &meta); err != nil {
			return nil, fmt.Errorf("stq: corrupt %s: %w", partitionMetaName, err)
		}
		if meta.Partitions != cfg.Partitions {
			return nil, fmt.Errorf("stq: durable dir %s was recorded with %d partitions, reopened with %d — partition routing would change; reopen with the recorded count",
				cfg.Dir, meta.Partitions, cfg.Partitions)
		}
	} else if os.IsNotExist(err) {
		b, _ := json.Marshal(partitionMeta{Partitions: cfg.Partitions})
		if err := os.WriteFile(metaPath, b, 0o644); err != nil {
			return nil, fmt.Errorf("stq: writing %s: %w", partitionMetaName, err)
		}
	} else {
		return nil, err
	}

	sys, err := NewPartitionedSystem(w, cfg.Partitions)
	if err != nil {
		return nil, err
	}
	stores := sys.parts.Stores()
	logs := make([]*wal.Log, cfg.Partitions)
	recs := make([]*wal.Recovered, cfg.Partitions)
	errs := make([]error, cfg.Partitions)
	closeAll := func() {
		for _, l := range logs {
			if l != nil {
				l.Close()
			}
		}
	}
	// Open and replay every partition in parallel: the logs are
	// independent and each replays into its own store.
	var wg sync.WaitGroup
	for p := 0; p < cfg.Partitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			dir := filepath.Join(cfg.Dir, fmt.Sprintf("part-%03d", p))
			l, rec, err := wal.Open(dir, wal.Options{
				Sync:         cfg.Sync,
				SyncEvery:    cfg.SyncEvery,
				SegmentBytes: cfg.SegmentBytes,
			})
			if err != nil {
				errs[p] = err
				return
			}
			logs[p], recs[p] = l, rec
			if ck := recs[p].Checkpoint; ck != nil {
				if err := stores[p].RestoreSnapshot(ck.Snapshot); err != nil {
					errs[p] = fmt.Errorf("stq: restoring partition %d checkpoint: %w", p, err)
					return
				}
			}
			// Member stores always validate per edge; the Set-level
			// contract is restored below from the recovered records.
			stores[p].SetOrdering(core.OrderPerEdge)
			for _, r := range recs[p].Records {
				if r.IsOrdering {
					continue
				}
				if err := stores[p].RecordBatch(r.Events); err != nil {
					errs[p] = fmt.Errorf("stq: replaying partition %d log record %d: %w", p, r.LSN, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	// The Set-level ordering contract and the serving epoch are written
	// identically to every partition (checkpoint snapshots carry the
	// Set-level ordering; SetIngestOrdering appends an ordering record
	// to every log), so each partition's recovered view — checkpointed
	// ordering advanced by its own logged ordering records — agrees
	// except across a crash window mid-broadcast. OrderGlobal (the
	// stricter contract) wins such a tie: every applied batch satisfied
	// whichever contract was live when it was applied, so the stricter
	// survivor is always a sound description of the recovered history.
	finalOrdering := core.OrderPerEdge
	var maxEpoch uint64
	for p := 0; p < cfg.Partitions; p++ {
		ord := core.OrderGlobal
		if ck := recs[p].Checkpoint; ck != nil {
			ord = ck.Snapshot.Ordering
			if ck.ServingEpoch > maxEpoch {
				maxEpoch = ck.ServingEpoch
			}
		}
		for _, r := range recs[p].Records {
			if r.IsOrdering {
				ord = r.Ordering
			}
		}
		if ord == core.OrderGlobal {
			finalOrdering = core.OrderGlobal
		}
	}
	sys.parts.SetOrdering(finalOrdering)
	sys.mu.Lock()
	if e := sys.epoch.Load(); maxEpoch > e {
		sys.epoch.Store(maxEpoch)
	}
	sys.rebuild()
	sys.mu.Unlock()
	sys.dlogs = logs
	return sys, nil
}

// restoreRecovered installs recovered durable state into a freshly
// constructed system: checkpoint snapshot, then the log tail replayed
// in LSN order, then one rebuild that republishes the serving engine.
func (s *System) restoreRecovered(rec *wal.Recovered) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The final ordering contract is the checkpointed one advanced by any
	// logged ordering changes. Replay itself always runs under
	// OrderPerEdge: the log records batches in apply order, and any
	// successfully applied sequence is per-form monotone in that order,
	// even if part of it was ingested under the (stricter) global mode.
	finalOrdering := core.OrderGlobal
	if ck := rec.Checkpoint; ck != nil {
		if err := s.store.RestoreSnapshot(ck.Snapshot); err != nil {
			return fmt.Errorf("stq: restoring checkpoint: %w", err)
		}
		finalOrdering = ck.Snapshot.Ordering
		if e := s.epoch.Load(); ck.ServingEpoch > e {
			s.epoch.Store(ck.ServingEpoch)
		}
	}
	s.store.SetOrdering(core.OrderPerEdge)
	for _, r := range rec.Records {
		if r.IsOrdering {
			finalOrdering = r.Ordering
			continue
		}
		if err := s.store.RecordBatch(r.Events); err != nil {
			return fmt.Errorf("stq: replaying log record %d: %w", r.LSN, err)
		}
	}
	s.store.SetOrdering(finalOrdering)
	if s.trainer != nil {
		// Learned-model buffers are deliberately not checkpointed: they
		// are a deterministic function of the exact store, so recovery
		// retrains rather than persists (DESIGN.md §11).
		s.learnt = learned.FromExact(s.store, s.trainer)
	}
	// Publish a fresh engine: ServingEpoch moves strictly past the
	// checkpointed epoch and the new engine starts with an empty query-
	// plan cache, so stale pre-crash plans can never be served.
	s.rebuild()
	return nil
}

// Durable reports whether the system was opened with OpenDurable.
func (s *System) Durable() bool { return s.dlog != nil || len(s.dlogs) > 0 }

// allLogs returns every write-ahead log of a durable system (one for
// single-store, one per partition otherwise); nil when not durable.
func (s *System) allLogs() []*wal.Log {
	if s.dlog != nil {
		return []*wal.Log{s.dlog}
	}
	return s.dlogs
}

// NumEvents returns the number of events currently in the store
// (recovered plus newly ingested).
func (s *System) NumEvents() int { return s.st().NumEvents() }

// recordDurable applies one atomic batch and logs it. The dmu critical
// section covers both, so log order always equals apply order — the
// invariant recovery's replay depends on. Apply runs first because it
// performs all validation; if the subsequent append fails the batch is
// live in memory but not durable, and the error says so.
//
// On partitioned systems the batch is split by the router and each
// partition's sub-batch is appended to that partition's log, so a
// partition's log replays exactly the events its store applied.
func (s *System) recordDurable(events []Event) error {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if s.parts != nil {
		subs, err := s.parts.RecordBatchSplit(events)
		if err != nil {
			return err
		}
		sysEvents.AddInt(len(events))
		for p, sub := range subs {
			if len(sub) == 0 {
				continue
			}
			if _, err := s.dlogs[p].AppendBatch(sub); err != nil {
				return fmt.Errorf("stq: batch applied in memory but not logged (partition %d): %w", p, err)
			}
		}
		s.maybeSeal(len(events))
		return nil
	}
	if err := s.store.RecordBatch(events); err != nil {
		return err
	}
	sysEvents.AddInt(len(events))
	if _, err := s.dlog.AppendBatch(events); err != nil {
		return fmt.Errorf("stq: batch applied in memory but not logged: %w", err)
	}
	s.maybeSeal(len(events))
	return nil
}

// Checkpoint serializes the full store state beside the log and
// truncates the log prefix the checkpoint covers. The snapshot is taken
// with ingestion paused (the dmu critical section), so it corresponds
// exactly to the log position it is stamped with. After a successful
// checkpoint, recovery replays only records appended afterwards.
//
// Partitioned systems checkpoint every partition (in parallel): each
// partition's snapshot pairs with its own log position. The snapshots
// carry the Set-level ordering contract so recovery restores it.
func (s *System) Checkpoint() error {
	if !s.Durable() {
		return fmt.Errorf("stq: Checkpoint requires a durable system (OpenDurable)")
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if s.parts == nil {
		snap := s.store.ExportSnapshot()
		return s.dlog.WriteCheckpoint(snap, s.epoch.Load())
	}
	stores := s.parts.Stores()
	ord := s.parts.GetOrdering()
	epoch := s.epoch.Load()
	errs := make([]error, len(stores))
	var wg sync.WaitGroup
	for p := range stores {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			snap := stores[p].ExportSnapshot()
			// Member stores run OrderPerEdge internally; the checkpoint
			// records the Set-level contract instead, which is what
			// recovery must restore.
			snap.Ordering = ord
			errs[p] = s.dlogs[p].WriteCheckpoint(snap, epoch)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			return fmt.Errorf("stq: checkpointing partition %d: %w", p, err)
		}
	}
	return nil
}

// SyncWAL forces every acknowledged append to stable storage,
// regardless of the configured fsync policy. No-op on non-durable
// systems.
func (s *System) SyncWAL() error {
	for _, l := range s.allLogs() {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the write-ahead log(s) and, on cluster
// systems, releases the router store (health loop, connections). The
// system keeps serving queries, but further ingestion fails. No-op on
// non-durable single-process systems.
func (s *System) Close() error {
	var firstErr error
	if s.cstore != nil {
		firstErr = s.cstore.Close()
	}
	if !s.Durable() {
		return firstErr
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	for _, l := range s.allLogs() {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
