package stq

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/learned"
	"repro/internal/roadnet"
	"repro/internal/wal"
)

// SyncPolicy selects when durable appends reach stable storage
// (internal/wal, DESIGN.md §11).
type SyncPolicy = wal.SyncPolicy

// Fsync policies for Durability.Sync.
const (
	// SyncInterval (the default) fsyncs at most once per SyncEvery.
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs after every append.
	SyncAlways = wal.SyncAlways
	// SyncNever leaves persistence timing to the OS.
	SyncNever = wal.SyncNever
)

// Durability configures the opt-in durability subsystem: a segmented,
// CRC32C-framed write-ahead log plus versioned checkpoints, rooted at
// Dir. See OpenDurable.
type Durability struct {
	// Dir is the directory holding the log segments and checkpoints.
	// It is created if missing.
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery bounds the fsync interval under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes rolls the active log segment when it would exceed
	// this size (default 8 MiB).
	SegmentBytes int64
}

// OpenDurable wraps a world in a durable System: every ingested batch
// is appended to the write-ahead log in cfg.Dir, and previously logged
// state is recovered first. Recovery loads the newest valid checkpoint,
// replays the surviving log tail — tolerating a torn or truncated final
// record — and produces a store whose query answers are bit-identical
// to the pre-crash system over the recovered event prefix.
//
// The world must be the same world the directory's history was recorded
// against: checkpoints and log records reference roads and gateways by
// ID. Restoring against a world with fewer roads fails validation;
// matching worlds is the caller's contract (persist the world alongside,
// e.g. with worldio).
//
// Restore publishes a fresh serving engine and advances ServingEpoch
// strictly past the checkpointed epoch, so no query plan cached before
// the crash — or compiled by a previous incarnation — can be served
// against the recovered store.
func OpenDurable(w *roadnet.World, cfg Durability) (*System, error) {
	l, rec, err := wal.Open(cfg.Dir, wal.Options{
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncEvery,
		SegmentBytes: cfg.SegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	s := NewSystem(w)
	if err := s.restoreRecovered(rec); err != nil {
		l.Close()
		return nil, err
	}
	s.dlog = l
	return s, nil
}

// restoreRecovered installs recovered durable state into a freshly
// constructed system: checkpoint snapshot, then the log tail replayed
// in LSN order, then one rebuild that republishes the serving engine.
func (s *System) restoreRecovered(rec *wal.Recovered) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The final ordering contract is the checkpointed one advanced by any
	// logged ordering changes. Replay itself always runs under
	// OrderPerEdge: the log records batches in apply order, and any
	// successfully applied sequence is per-form monotone in that order,
	// even if part of it was ingested under the (stricter) global mode.
	finalOrdering := core.OrderGlobal
	if ck := rec.Checkpoint; ck != nil {
		if err := s.store.RestoreSnapshot(ck.Snapshot); err != nil {
			return fmt.Errorf("stq: restoring checkpoint: %w", err)
		}
		finalOrdering = ck.Snapshot.Ordering
		if e := s.epoch.Load(); ck.ServingEpoch > e {
			s.epoch.Store(ck.ServingEpoch)
		}
	}
	s.store.SetOrdering(core.OrderPerEdge)
	for _, r := range rec.Records {
		if r.IsOrdering {
			finalOrdering = r.Ordering
			continue
		}
		if err := s.store.RecordBatch(r.Events); err != nil {
			return fmt.Errorf("stq: replaying log record %d: %w", r.LSN, err)
		}
	}
	s.store.SetOrdering(finalOrdering)
	if s.trainer != nil {
		// Learned-model buffers are deliberately not checkpointed: they
		// are a deterministic function of the exact store, so recovery
		// retrains rather than persists (DESIGN.md §11).
		s.learnt = learned.FromExact(s.store, s.trainer)
	}
	// Publish a fresh engine: ServingEpoch moves strictly past the
	// checkpointed epoch and the new engine starts with an empty query-
	// plan cache, so stale pre-crash plans can never be served.
	s.rebuild()
	return nil
}

// Durable reports whether the system was opened with OpenDurable.
func (s *System) Durable() bool { return s.dlog != nil }

// NumEvents returns the number of events currently in the store
// (recovered plus newly ingested).
func (s *System) NumEvents() int { return s.store.NumEvents() }

// recordDurable applies one atomic batch and logs it. The dmu critical
// section covers both, so log order always equals apply order — the
// invariant recovery's replay depends on. Apply runs first because it
// performs all validation; if the subsequent append fails the batch is
// live in memory but not durable, and the error says so.
func (s *System) recordDurable(events []Event) error {
	s.dmu.Lock()
	defer s.dmu.Unlock()
	if err := s.store.RecordBatch(events); err != nil {
		return err
	}
	sysEvents.AddInt(len(events))
	if _, err := s.dlog.AppendBatch(events); err != nil {
		return fmt.Errorf("stq: batch applied in memory but not logged: %w", err)
	}
	s.maybeSeal(len(events))
	return nil
}

// Checkpoint serializes the full store state beside the log and
// truncates the log prefix the checkpoint covers. The snapshot is taken
// with ingestion paused (the dmu critical section), so it corresponds
// exactly to the log position it is stamped with. After a successful
// checkpoint, recovery replays only records appended afterwards.
func (s *System) Checkpoint() error {
	if s.dlog == nil {
		return fmt.Errorf("stq: Checkpoint requires a durable system (OpenDurable)")
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	snap := s.store.ExportSnapshot()
	return s.dlog.WriteCheckpoint(snap, s.epoch.Load())
}

// SyncWAL forces every acknowledged append to stable storage,
// regardless of the configured fsync policy. No-op on non-durable
// systems.
func (s *System) SyncWAL() error {
	if s.dlog == nil {
		return nil
	}
	return s.dlog.Sync()
}

// Close flushes and closes the write-ahead log. The system keeps
// serving queries, but further ingestion fails. No-op on non-durable
// systems.
func (s *System) Close() error {
	if s.dlog == nil {
		return nil
	}
	s.dmu.Lock()
	defer s.dmu.Unlock()
	return s.dlog.Close()
}
